//! The in-process FanStore cluster runtime (paper §V-A, §V-D).
//!
//! Mirrors the `mpiexec` launch of one FanStore process per node: each
//! rank loads its assigned partitions from the "shared file system" (the
//! partition buffers handed to [`FanStore::run`]), optionally replicates
//! extra partitions from its ring neighbour, exchanges metadata with one
//! allgather, starts its daemon, and then runs the user's training
//! closure against a [`FsClient`].

use std::sync::Arc;

use mpi_sim::{launch, launch_with_faults, FaultPlan, NodeCtx, Tag};

use crate::backend::{Backend, BackendKind, RamBackend};
use crate::cache::CacheConfig;
use crate::client::{FailoverConfig, FsClient};
use crate::daemon::{serve_qos, tags};
use crate::metrics::MetricsRegistry;
use crate::node::{LocalObject, NodeState};
use crate::qos::QosPolicy;
use crate::trace::TraceRecorder;

/// Ring-transfer tag namespace on the control channel.
const RING_TAG_BASE: Tag = 1000;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated nodes (one rank per node, as the paper
    /// prescribes).
    pub nodes: usize,
    /// Decompressed-cache configuration per node.
    pub cache: CacheConfig,
    /// How many ranks' partitions each node holds: 1 = only its own
    /// (default); k > 1 = also the partitions of its k-1 left ring
    /// neighbours, copied over the ring rather than re-read from the
    /// shared file system (§V-D "storing additional partitions").
    pub replication: usize,
    /// A broadcast partition (e.g. validation set) loaded by every node
    /// (§V-B).
    pub broadcast: Option<Vec<u8>>,
    /// Node-local storage backend for the compressed objects (§IV-C1:
    /// RAM hash table or local file system).
    pub backend: BackendKind,
    /// Burst-buffer capacity per node in bytes. When set, FanStore::run
    /// validates that assigned partitions fit and clamps `replication` to
    /// the rounds every node can afford (§IV-C1 dynamic load decisions).
    pub node_capacity: Option<u64>,
    /// I/O trace ring size per node (0 = tracing off). When non-zero the
    /// client records every POSIX-surface call; inspect via
    /// `fs.trace()` inside the closure.
    pub trace_ring: usize,
    /// Seeded fault schedule injected into the simulated fabric. Plans
    /// without an explicit channel scope are restricted to the service
    /// channel — injecting into the control channel would break the
    /// startup collectives and the teardown barrier rather than model a
    /// dying daemon.
    pub fault_plan: Option<FaultPlan>,
    /// Client-side recovery policy (rpc deadlines, replica failover,
    /// backoff). `replica_rounds` is overwritten with the replication the
    /// placement actually granted.
    pub failover: Option<FailoverConfig>,
    /// Keep a read-through copy of every partition (models the shared
    /// file system staying available): the client's last resort after
    /// every replica failed, letting training survive a dead rank even
    /// for unreplicated partitions.
    pub read_through: bool,
    /// Per-node metrics collection (counters, gauges, latency
    /// histograms). On by default; turn off to benchmark the raw path —
    /// disabled instruments are a single branch per record.
    pub metrics: bool,
    /// Multi-tenant QoS policy (admission control, weighted-fair daemon
    /// scheduling, deadline shedding). `None` (default) keeps the pre-QoS
    /// behaviour exactly: strict-FIFO daemons, no deadlines, no
    /// throttling. The closure's client runs as tenant 0; fork siblings
    /// with [`FsClient::fork_tenant`].
    pub qos: Option<QosPolicy>,
    /// Durable write path per node (see [`crate::wal`]). `None`
    /// (default) keeps writes purely in-memory; `Some` lands every
    /// write-store mutation in a per-node WAL before it is acknowledged
    /// and replays it at daemon start.
    pub wal: Option<crate::wal::WalConfig>,
    /// Pre-built WAL media, one per rank. Lets a test share media
    /// across two `FanStore::run` invocations — the in-process model of
    /// restarting daemons on the same disks. Ranks beyond the vector
    /// (or `None`) get a fresh [`crate::wal::RamMedia`].
    pub wal_media: Option<Vec<Arc<crate::wal::RamMedia>>>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 1,
            cache: CacheConfig::default(),
            replication: 1,
            broadcast: None,
            backend: BackendKind::Ram,
            node_capacity: None,
            trace_ring: 0,
            fault_plan: None,
            failover: None,
            read_through: false,
            metrics: true,
            qos: None,
            wal: None,
            wal_media: None,
        }
    }
}

/// Entry point for running FanStore clusters.
pub struct FanStore;

/// Encode a list of partitions into one ring-transfer message.
fn encode_partition_set(parts: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(parts.iter().map(|p| p.len() + 8).sum::<usize>() + 4);
    out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    for p in parts {
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

/// Decode a ring-transfer message back into partitions.
fn decode_partition_set(buf: &[u8]) -> Vec<Vec<u8>> {
    let count = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    let mut parts = Vec::with_capacity(count);
    let mut pos = 4usize;
    for _ in 0..count {
        let len = u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes")) as usize;
        pos += 8;
        parts.push(buf[pos..pos + len].to_vec());
        pos += len;
    }
    parts
}

impl FanStore {
    /// Run `f` on every node of a FanStore cluster serving `partitions`.
    ///
    /// Partitions are assigned round-robin (`partition i -> rank i %
    /// nodes`); results are returned in rank order. The closure receives a
    /// fully initialised [`FsClient`] with the global namespace visible.
    pub fn run<T, F>(cfg: ClusterConfig, partitions: Vec<Vec<u8>>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&FsClient) -> T + Send + Sync,
    {
        let nodes = cfg.nodes.max(1);
        // Capacity-aware placement (§IV-C1): validate the assignment and
        // clamp replication to what every node can hold.
        let sizes: Vec<u64> = partitions.iter().map(|p| p.len() as u64).collect();
        let requested_rounds = cfg.replication.clamp(1, nodes) - 1;
        let placement = crate::placement::plan(&sizes, nodes, cfg.node_capacity, requested_rounds)
            .expect("partition placement");
        let replication = placement.extra_rounds + 1;
        // Read-through copy: the "shared file system" every partition was
        // packed from, kept reachable as the failover path of last resort.
        let read_through: Option<Arc<dyn Backend>> = if cfg.read_through {
            let ram = RamBackend::new();
            for p in partitions.iter().chain(cfg.broadcast.as_ref()) {
                for e in crate::pack::parse_partition(p).expect("read-through partition parses") {
                    ram.put(
                        &e.path,
                        LocalObject { codec: e.codec, stat: e.stat, data: Arc::new(e.data) },
                    )
                    .expect("read-through insert");
                }
            }
            Some(Arc::new(ram))
        } else {
            None
        };
        let failover = cfg.failover.clone().map(|mut fo| {
            fo.replica_rounds = placement.extra_rounds;
            fo
        });
        let fault_plan = cfg.fault_plan.clone().map(|mut plan| {
            if plan.channels.is_none() {
                plan.channels = Some(vec![1]); // service channel only
            }
            plan
        });
        let partitions = Arc::new(partitions);
        let broadcast = Arc::new(cfg.broadcast.clone());
        let cache_cfg = cfg.cache;
        let backend_kind = cfg.backend.clone();
        let trace_ring = cfg.trace_ring;
        let metrics_on = cfg.metrics;
        let qos = cfg.qos.clone().map(Arc::new);
        let wal_cfg = cfg.wal.clone();
        let wal_media = cfg.wal_media.clone();
        let f = &f;

        let node_body = move |mut ctx: NodeCtx| {
            let mut control = ctx.take_channel(0);
            let service = ctx.take_channel(1);
            let service_remote = service.remote();
            let backend = backend_kind.create(ctx.rank).expect("backend init");
            let registry = Arc::new(if metrics_on {
                MetricsRegistry::new()
            } else {
                MetricsRegistry::disabled()
            });
            let mut state =
                NodeState::with_metrics(ctx.rank, ctx.size, cache_cfg, backend, registry);
            if let Some(wcfg) = &wal_cfg {
                // This rank's durable medium: the caller-provided one
                // (surviving across runs — a restart on the same disk),
                // else a fresh in-RAM medium for this run only.
                let media: Arc<dyn crate::wal::WalMedia> = wal_media
                    .as_ref()
                    .and_then(|set| set.get(ctx.rank).cloned())
                    .map(|m| m as Arc<dyn crate::wal::WalMedia>)
                    .unwrap_or_else(|| crate::wal::RamMedia::new(wcfg.sync_cost));
                let (wal, _replay) =
                    crate::wal::WalStore::open(media, wcfg.clone(), &state.metrics)
                        .expect("wal open");
                state.attach_wal(Arc::new(wal));
            }
            let state = Arc::new(state);

            // 1. Load assigned partitions from the shared file system.
            let mut assigned: Vec<Vec<u8>> = Vec::new();
            for (i, p) in partitions.iter().enumerate() {
                if i % nodes == ctx.rank {
                    state.load_partition(p).expect("assigned partition parses");
                    assigned.push(p.clone());
                }
            }
            // Broadcast set: every node loads it in full.
            if let Some(b) = broadcast.as_ref() {
                state.load_partition(b).expect("broadcast partition parses");
            }

            // 2. Replicate extra partitions over the virtual ring: round r
            // receives the partitions owned by the rank r steps to the
            // left, forwarding what arrived in the previous round (§V-D).
            let mut traveling = assigned;
            for round in 1..replication {
                let tag = RING_TAG_BASE + round as Tag;
                control
                    .send(control.ring_right(), tag, encode_partition_set(&traveling))
                    .expect("ring send");
                let msg =
                    control.recv_match(Some(control.ring_left()), Some(tag)).expect("ring recv");
                let received = decode_partition_set(&msg.payload);
                for p in &received {
                    state.load_partition(p).expect("replica partition parses");
                }
                traveling = received;
            }

            // 3. Metadata allgather: after this, every stat()/readdir() is
            // node-local (§IV-C1).
            let local_meta = state.encode_local_meta();
            let gathered = control.allgather(local_meta).expect("metadata allgather");
            for (rank, buf) in gathered.iter().enumerate() {
                if rank != ctx.rank {
                    state.merge_meta(buf).expect("peer metadata parses");
                }
            }

            // 4. Daemon + client. The daemon owns the service endpoint; the
            // client keeps a send-only handle. Both share the trace
            // recorder so undeliverable replies surface next to client
            // failovers.
            let daemon_state = Arc::clone(&state);
            let trace = (trace_ring > 0).then(|| Arc::new(TraceRecorder::new(trace_ring)));
            let daemon_trace = trace.clone();
            let daemon_qos = qos.clone();
            let result = std::thread::scope(|scope| {
                let daemon =
                    scope.spawn(move || serve_qos(daemon_state, service, daemon_trace, daemon_qos));
                let mut client = FsClient::new(Arc::clone(&state), service_remote.clone());
                if let Some(t) = &trace {
                    client = client.with_trace(Arc::clone(t));
                }
                if let Some(fo) = &failover {
                    client = client.with_failover(fo.clone());
                }
                if let Some(rt) = &read_through {
                    client = client.with_read_through(Arc::clone(rt));
                }
                if let Some(q) = &qos {
                    client = client.with_qos(Arc::clone(q), 0);
                }

                // Catch panics from the user closure so the daemon still
                // gets its shutdown and peer ranks still get their barrier
                // partner — otherwise one panicking rank deadlocks the
                // whole cluster instead of failing it.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&client)));

                // 5. Quiesce: nobody may still be fetching from a peer
                // daemon once shutdowns begin.
                let _ = control.barrier();
                let _ = service_remote.rpc(ctx.rank, tags::SHUTDOWN, Vec::new());
                daemon.join().expect("daemon thread");
                match result {
                    Ok(r) => r,
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            });
            result
        };

        match fault_plan {
            Some(plan) => launch_with_faults(nodes, 2, plan, node_body).0,
            None => launch(nodes, 2, node_body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{prepare, PrepConfig};

    fn dataset(n: usize) -> Vec<(String, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("train/c{:02}/img{i:04}.bin", i % 4),
                    format!("content of file {i} ").repeat(40).into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn every_node_reads_every_file() {
        let files = dataset(12);
        let packed = prepare(files.clone(), &PrepConfig { partitions: 4, ..Default::default() });
        let results = FanStore::run(
            ClusterConfig { nodes: 4, ..Default::default() },
            packed.partitions,
            |fs| {
                let mut ok = 0usize;
                for (path, expect) in &files {
                    let got = fs.read_whole(path).unwrap();
                    assert_eq!(&got, expect, "{path} on rank {}", fs.rank());
                    ok += 1;
                }
                ok
            },
        );
        assert_eq!(results, vec![12; 4]);
    }

    #[test]
    fn remote_fetches_happen_and_count() {
        let files = dataset(8);
        let packed = prepare(files.clone(), &PrepConfig { partitions: 2, ..Default::default() });
        let results = FanStore::run(
            ClusterConfig { nodes: 2, ..Default::default() },
            packed.partitions,
            |fs| {
                for (path, _) in &files {
                    fs.read_whole(path).unwrap();
                }
                (fs.state().stats.local_opens.get(), fs.state().stats.remote_opens.get())
            },
        );
        for (local, remote) in results {
            assert_eq!(local + remote, 8);
            assert_eq!(remote, 4, "half the files live on the peer");
        }
    }

    #[test]
    fn replication_eliminates_remote_traffic() {
        let files = dataset(8);
        let packed = prepare(files.clone(), &PrepConfig { partitions: 4, ..Default::default() });
        let results = FanStore::run(
            ClusterConfig { nodes: 4, replication: 4, ..Default::default() },
            packed.partitions,
            |fs| {
                for (path, _) in &files {
                    fs.read_whole(path).unwrap();
                }
                fs.state().stats.remote_opens.get()
            },
        );
        assert_eq!(results, vec![0; 4], "full replication: all reads local");
    }

    #[test]
    fn more_partitions_than_nodes_reads_remotely() {
        // Prep records partition indices in `owner_rank`; with more
        // partitions than nodes those indices exceed the rank range and
        // must reduce modulo the cluster size (partition p loads on rank
        // p % nodes), or every file in a high partition is unreachable.
        let files = dataset(12);
        let packed = prepare(files.clone(), &PrepConfig { partitions: 6, ..Default::default() });
        let results = FanStore::run(
            ClusterConfig { nodes: 2, ..Default::default() },
            packed.partitions,
            |fs| files.iter().filter(|(p, d)| &fs.read_whole(p).unwrap() == d).count(),
        );
        assert_eq!(results, vec![12; 2]);
    }

    #[test]
    fn metadata_is_global_after_allgather() {
        let files = dataset(10);
        let packed = prepare(files, &PrepConfig { partitions: 3, ..Default::default() });
        let results = FanStore::run(
            ClusterConfig { nodes: 3, ..Default::default() },
            packed.partitions,
            |fs| {
                // stat every file + enumerate the tree, all node-local.
                let found = fs.enumerate("train").unwrap();
                let st = fs.stat("train/c00/img0000.bin").unwrap();
                (found.len(), st.size)
            },
        );
        for (count, size) in results {
            assert_eq!(count, 10);
            assert!(size > 0);
        }
    }

    #[test]
    fn broadcast_partition_local_everywhere() {
        let train = dataset(4);
        let val = vec![("val/v0.bin".to_string(), vec![9u8; 2000])];
        let packed = prepare(train, &PrepConfig { partitions: 2, ..Default::default() });
        let bcast = crate::prep::prepare_broadcast(val, &PrepConfig::default());
        let results = FanStore::run(
            ClusterConfig { nodes: 2, broadcast: Some(bcast), ..Default::default() },
            packed.partitions,
            |fs| {
                let data = fs.read_whole("val/v0.bin").unwrap();
                assert_eq!(data, vec![9u8; 2000]);
                fs.state().stats.remote_opens.get()
            },
        );
        assert_eq!(results, vec![0, 0], "validation reads are all local");
    }

    #[test]
    fn write_and_stat_across_nodes() {
        let packed = prepare(dataset(2), &PrepConfig { partitions: 2, ..Default::default() });
        let results = FanStore::run(
            ClusterConfig { nodes: 2, ..Default::default() },
            packed.partitions,
            |fs| {
                // Rank 0 writes a checkpoint; after a barrier-free delay the
                // other rank stats it via the metadata owner.
                if fs.rank() == 0 {
                    fs.write_whole("ckpt/model_epoch_01.h5", &vec![1u8; 4096]).unwrap();
                }
                // Synchronise via busy retry (stat falls back to the meta
                // owner rank).
                let mut size = None;
                for _ in 0..200 {
                    if let Ok(st) = fs.stat("ckpt/model_epoch_01.h5") {
                        size = Some(st.size);
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                size
            },
        );
        // The writer sees it immediately; the peer may or may not see it
        // depending on which rank owns the metadata — it must at least not
        // crash, and the writer's view must be exact.
        assert_eq!(results[0], Some(4096));
    }

    #[test]
    fn closure_panic_fails_cleanly_not_deadlocks() {
        // A panicking rank must fail the run (propagated panic), not hang
        // the cluster waiting for daemons/barriers.
        let packed = prepare(dataset(4), &PrepConfig { partitions: 2, ..Default::default() });
        let result = std::panic::catch_unwind(|| {
            FanStore::run(
                ClusterConfig { nodes: 2, ..Default::default() },
                packed.partitions.clone(),
                |fs| {
                    if fs.rank() == 1 {
                        panic!("simulated training failure");
                    }
                    fs.read_whole("train/c00/img0000.bin").unwrap().len()
                },
            )
        });
        assert!(result.is_err(), "panic must propagate");
    }

    #[test]
    fn single_node_cluster_works() {
        let files = dataset(3);
        let packed = prepare(files.clone(), &PrepConfig::default());
        let results = FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
            files.iter().all(|(p, d)| &fs.read_whole(p).unwrap() == d)
        });
        assert_eq!(results, vec![true]);
    }
}
