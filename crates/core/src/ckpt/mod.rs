//! `fanstore::ckpt` — a durable, compressed, replicated checkpoint store
//! with delta encoding and crash recovery.
//!
//! The paper's fault-tolerance story (§V-E) is "DL training already
//! checkpoints per epoch; resume from the last one". This subsystem makes
//! that mechanism actually robust on top of the FanStore write path:
//!
//! * **Chunked, framed segments** ([`frame`]): each checkpoint payload is
//!   split into fixed-size chunks; every chunk is compressed through the
//!   [`fanstore_compress`] registry and written as a frame carrying its
//!   own CRC32 + length header, so corruption and torn tails are detected
//!   at chunk granularity.
//! * **Delta encoding** ([`delta`]): consecutive model checkpoints differ
//!   in few bytes (ZipNN and *Lossless Compression of Neural Network
//!   Components* both measure this), so a chunk may be stored as the
//!   byte-delta against the previous generation's chunk whenever that is
//!   smaller than storing it outright. Full generations are forced every
//!   `full_every` generations to bound recovery chains.
//! * **Atomic publish** ([`manifest`]): a generation's manifest is
//!   written *last*, after every segment it names. FanStore's write-once
//!   model makes `close()` the publish point — the object is invisible
//!   until finalised, the moral equivalent of write-temp-then-rename on a
//!   POSIX file system — so a crash mid-checkpoint can never leave a
//!   manifest naming missing segments.
//! * **Replication** ([`store`]): segments and manifest are pushed to the
//!   owner's ring replicas ([`crate::placement::replicas_of`]) over the
//!   daemon PUT path, so a rank's newest checkpoint survives its death.
//! * **Recovery** ([`store::CheckpointStore::recover`]): scan newest →
//!   oldest, CRC-verify everything, and fall back past torn or partially
//!   replicated generations to the newest *verifiable* one. "No
//!   generations at all" (fresh start) is distinguished from "generations
//!   exist but none loads" (an error, never a silent restart from zero).

pub mod delta;
pub mod frame;
pub mod manifest;
pub mod store;

pub use store::{CheckpointStore, CkptConfig, GcReport, PutReport, Recovery, VerifyReport};
