//! The checkpoint store proper: put / recover / verify / gc over a
//! [`FsClient`].
//!
//! A store is a view of one rank's checkpoint lineage under
//! `ckpt/<tag>/rank<owner>/`: generation `g` consists of segment objects
//! `gen<g>/seg<k>` plus the manifest `gen<g>.mfst`, written last as the
//! atomic publish point. Segments and manifest are pushed to the owner's
//! ring replicas so the lineage survives the owner's death; recovery
//! walks generations newest → oldest and loads the newest one whose
//! manifest, segments, and delta base chain all CRC-verify.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use fanstore_compress::crc32::crc32;
use fanstore_compress::{compress_to_vec, registry, CodecFamily, CodecId};

use crate::ckpt::delta::{decode_chunk_delta, encode_chunk_delta};
use crate::ckpt::frame::{decode_segment, encode_frame, FLAG_DELTA};
use crate::ckpt::manifest::{Manifest, SegmentMeta};
use crate::client::FsClient;
use crate::metrics::{now_us, Counter, Histogram};
use crate::placement::replicas_of;
use crate::FsError;

/// Checkpoint store configuration.
#[derive(Debug, Clone)]
pub struct CkptConfig {
    /// Lineage name; the store lives under `ckpt/<tag>/rank<owner>/`.
    pub tag: String,
    /// Chunk size the payload is split into (each chunk = one frame).
    pub chunk_size: usize,
    /// Chunks per segment object.
    pub chunks_per_segment: usize,
    /// Codec for chunk payloads (chunks that do not shrink are stored
    /// raw regardless).
    pub codec: CodecId,
    /// Delta-encode against the previous generation when smaller.
    pub delta: bool,
    /// Force a full (non-delta) generation whenever `generation %
    /// full_every == 0`, bounding recovery chain length. 0 = never force.
    pub full_every: u64,
    /// Ring replicas each segment + manifest is pushed to (0 = none).
    pub replicas: usize,
    /// GC retention: keep the newest `keep_last` generations plus their
    /// delta bases. 0 disables GC.
    pub keep_last: usize,
}

impl Default for CkptConfig {
    fn default() -> Self {
        CkptConfig {
            tag: "default".to_string(),
            chunk_size: 64 * 1024,
            chunks_per_segment: 16,
            codec: CodecId::new(CodecFamily::Lz4Hc, 6),
            delta: true,
            full_every: 4,
            replicas: 1,
            keep_last: 0,
        }
    }
}

/// What one [`CheckpointStore::put`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutReport {
    /// Generation written.
    pub generation: u64,
    /// Base generation the delta frames reference (`None` = full).
    pub base: Option<u64>,
    /// Payload length.
    pub raw_bytes: u64,
    /// Stored segment bytes (frames + headers, before replication).
    pub stored_bytes: u64,
    /// Chunks written.
    pub chunks: u64,
    /// Chunks that chose the delta encoding.
    pub delta_chunks: u64,
    /// Segment objects written.
    pub segments: usize,
    /// Replica pushes that failed (non-fatal: the local copy published).
    pub replicate_failures: usize,
}

/// Result of a [`CheckpointStore::recover`] scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery {
    /// No generations exist at all: a genuine fresh start.
    Fresh,
    /// The newest verifiable generation.
    Loaded {
        /// Generation that loaded.
        generation: u64,
        /// Reconstructed checkpoint payload.
        payload: Vec<u8>,
        /// Newer generations skipped as torn/corrupt, newest first.
        skipped: Vec<u64>,
    },
}

/// What [`CheckpointStore::verify`] proved about a generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Generation verified.
    pub generation: u64,
    /// Its delta base (`None` = full).
    pub base: Option<u64>,
    /// Reconstructed payload length.
    pub raw_bytes: u64,
    /// Stored segment bytes per its manifest.
    pub stored_bytes: u64,
    /// Chunk count per its manifest.
    pub chunks: u64,
    /// Segment count.
    pub segments: usize,
    /// Delta base chain walked during reconstruction (nearest first).
    pub chain: Vec<u64>,
}

/// What one [`CheckpointStore::gc`] pass removed and kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcReport {
    /// Generations removed, oldest first.
    pub removed: Vec<u64>,
    /// Generations kept, oldest first.
    pub kept: Vec<u64>,
}

/// Resolved instruments (`ckpt.*` namespace).
struct CkptMetrics {
    put_latency: Arc<Histogram>,
    put_bytes_raw: Arc<Counter>,
    put_bytes_stored: Arc<Counter>,
    put_chunks: Arc<Counter>,
    put_delta_chunks: Arc<Counter>,
    replicate_failures: Arc<Counter>,
    recover_latency: Arc<Histogram>,
    recover_fallbacks: Arc<Counter>,
    recover_torn: Arc<Counter>,
    gc_removed: Arc<Counter>,
}

impl CkptMetrics {
    fn resolve(fs: &FsClient) -> CkptMetrics {
        let m = &fs.state().metrics;
        CkptMetrics {
            put_latency: m.histogram("ckpt.put.latency_us"),
            put_bytes_raw: m.counter("ckpt.put.bytes_raw"),
            put_bytes_stored: m.counter("ckpt.put.bytes_stored"),
            put_chunks: m.counter("ckpt.put.chunks"),
            put_delta_chunks: m.counter("ckpt.put.delta_chunks"),
            replicate_failures: m.counter("ckpt.replicate.failures"),
            recover_latency: m.histogram("ckpt.recover.latency_us"),
            recover_fallbacks: m.counter("ckpt.recover.fallbacks"),
            recover_torn: m.counter("ckpt.recover.torn"),
            gc_removed: m.counter("ckpt.gc.removed"),
        }
    }
}

/// A durable, compressed, replicated checkpoint store for one rank's
/// lineage (see the [module docs](crate::ckpt)).
pub struct CheckpointStore<'a> {
    fs: &'a FsClient,
    cfg: CkptConfig,
    owner: usize,
    dir: String,
    /// Previous generation's payload, the delta base for the next put
    /// (seeded by [`recover`](Self::recover) after a restart).
    last: Mutex<Option<(u64, Arc<Vec<u8>>)>>,
    m: CkptMetrics,
}

impl<'a> CheckpointStore<'a> {
    /// A store for this rank's own lineage (the writing side).
    pub fn new(fs: &'a FsClient, cfg: CkptConfig) -> CheckpointStore<'a> {
        let owner = fs.rank();
        CheckpointStore::for_rank(fs, cfg, owner)
    }

    /// A store viewing `owner`'s lineage from any rank (a replica
    /// recovering a dead peer's checkpoint, or the CLI inspecting one).
    pub fn for_rank(fs: &'a FsClient, cfg: CkptConfig, owner: usize) -> CheckpointStore<'a> {
        let dir = format!("ckpt/{}/rank{owner}", cfg.tag);
        let m = CkptMetrics::resolve(fs);
        CheckpointStore { fs, cfg, owner, dir, last: Mutex::new(None), m }
    }

    /// The lineage directory, `ckpt/<tag>/rank<owner>`.
    pub fn dir(&self) -> &str {
        &self.dir
    }

    /// Store configuration.
    pub fn config(&self) -> &CkptConfig {
        &self.cfg
    }

    /// Manifest path of generation `g`.
    pub fn manifest_path(&self, g: u64) -> String {
        format!("{}/gen{g:08}.mfst", self.dir)
    }

    /// Segment directory of generation `g`.
    pub fn gen_dir(&self, g: u64) -> String {
        format!("{}/gen{g:08}", self.dir)
    }

    /// Published generations, oldest first (a generation exists iff its
    /// manifest does — segments without one were never committed).
    pub fn generations(&self) -> Result<Vec<u64>, FsError> {
        let mut stream = match self.fs.opendir(&self.dir) {
            Ok(s) => s,
            // No lineage directory at all: nothing was ever checkpointed
            // here. Any other error propagates — "can't tell" must never
            // read as "fresh start".
            Err(FsError::NotFound(_)) => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut gens: Vec<u64> = Vec::new();
        while let Some(name) = stream.next_entry() {
            if let Some(g) = name
                .strip_prefix("gen")
                .and_then(|n| n.strip_suffix(".mfst"))
                .and_then(|n| n.parse().ok())
            {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        gens.dedup();
        Ok(gens)
    }

    /// Read and CRC-verify generation `g`'s manifest.
    pub fn manifest(&self, g: u64) -> Result<Manifest, FsError> {
        Manifest::decode(&self.fs.read_whole(&self.manifest_path(g))?)
    }

    /// Write generation `g`: chunk, (maybe) delta-encode, compress,
    /// frame into segments, replicate, and publish the manifest last.
    pub fn put(&self, generation: u64, payload: &[u8]) -> Result<PutReport, FsError> {
        let start = now_us();
        let cs = self.cfg.chunk_size.max(1);
        let force_full = self.cfg.full_every > 0 && generation.is_multiple_of(self.cfg.full_every);
        let base: Option<(u64, Arc<Vec<u8>>)> = if self.cfg.delta && !force_full {
            self.last.lock().expect("ckpt last").clone().filter(|(g, _)| *g < generation)
        } else {
            None
        };
        let codec = registry::create(self.cfg.codec)
            .map_err(|e| FsError::Corrupt(format!("ckpt codec: {e}")))?;
        let store_codec = CodecId::new(CodecFamily::Store, 0);

        // Encode every chunk into frames, cutting segment blobs as we go.
        let per_seg = self.cfg.chunks_per_segment.max(1);
        let mut blobs: Vec<(String, Vec<u8>)> = Vec::new();
        let mut segments: Vec<SegmentMeta> = Vec::new();
        let mut seg = Vec::new();
        let mut seg_chunks = 0u32;
        let mut chunks = 0u64;
        let mut delta_chunks = 0u64;
        let mut cut = |seg: &mut Vec<u8>, seg_chunks: &mut u32| {
            let name = format!("seg{:04}", blobs.len());
            segments.push(SegmentMeta {
                name: name.clone(),
                chunks: *seg_chunks,
                bytes: seg.len() as u64,
                crc: crc32(seg),
            });
            blobs.push((name, std::mem::take(seg)));
            *seg_chunks = 0;
        };
        for (idx, chunk) in payload.chunks(cs).enumerate() {
            let full = compress_to_vec(codec.as_ref(), chunk);
            let (mut flags, mut cid, mut best) = if full.len() < chunk.len() {
                (0u8, self.cfg.codec, full)
            } else {
                (0u8, store_codec, chunk.to_vec())
            };
            if let Some((_, base)) = &base {
                let d = encode_chunk_delta(base, chunk, cs, idx);
                let dc = compress_to_vec(codec.as_ref(), &d);
                if dc.len() < best.len() {
                    (flags, cid, best) = (FLAG_DELTA, self.cfg.codec, dc);
                    delta_chunks += 1;
                }
            }
            encode_frame(&mut seg, flags, cid, chunk.len() as u32, &best);
            chunks += 1;
            seg_chunks += 1;
            if seg_chunks as usize == per_seg {
                cut(&mut seg, &mut seg_chunks);
            }
        }
        if seg_chunks > 0 {
            cut(&mut seg, &mut seg_chunks);
        }
        let stored_bytes: u64 = segments.iter().map(|s| s.bytes).sum();

        // Segments first, manifest last: the manifest's appearance is the
        // commit, so a crash anywhere in this loop publishes nothing.
        let gen_dir = self.gen_dir(generation);
        let mut replicate_failures = 0usize;
        for (name, blob) in &blobs {
            let path = format!("{gen_dir}/{name}");
            self.fs.write_whole(&path, blob)?;
            replicate_failures += self.replicate(&path, blob);
        }
        let manifest = Manifest {
            generation,
            base: base.as_ref().map(|(g, _)| *g),
            chunk_size: cs as u32,
            raw_bytes: payload.len() as u64,
            stored_bytes,
            segments,
        };
        let mbytes = manifest.encode();
        let mpath = self.manifest_path(generation);
        self.fs.write_whole(&mpath, &mbytes)?;
        replicate_failures += self.replicate(&mpath, &mbytes);

        *self.last.lock().expect("ckpt last") = Some((generation, Arc::new(payload.to_vec())));
        self.m.put_latency.record(now_us().saturating_sub(start));
        self.m.put_bytes_raw.add(payload.len() as u64);
        self.m.put_bytes_stored.add(stored_bytes);
        self.m.put_chunks.add(chunks);
        self.m.put_delta_chunks.add(delta_chunks);
        self.m.replicate_failures.add(replicate_failures as u64);
        Ok(PutReport {
            generation,
            base: manifest.base,
            raw_bytes: payload.len() as u64,
            stored_bytes,
            chunks,
            delta_chunks,
            segments: blobs.len(),
            replicate_failures,
        })
    }

    /// Push one object to the owner's ring replicas; returns the number
    /// of failed pushes (non-fatal: the local copy already published).
    fn replicate(&self, path: &str, data: &[u8]) -> usize {
        if self.cfg.replicas == 0 || self.fs.nodes() < 2 {
            return 0;
        }
        replicas_of(self.owner, self.fs.nodes(), self.cfg.replicas)
            .into_iter()
            .filter(|&r| r != self.fs.rank())
            .filter(|&r| self.fs.put_remote(r, path, data).is_err())
            .count()
    }

    /// Load the newest verifiable generation, skipping torn or corrupt
    /// ones. [`Recovery::Fresh`] means *no generations exist*; if
    /// generations exist but none loads, that is an error — a silent
    /// restart from zero would discard recoverable work.
    pub fn recover(&self) -> Result<Recovery, FsError> {
        let start = now_us();
        let gens = self.generations()?;
        if gens.is_empty() {
            return Ok(Recovery::Fresh);
        }
        let mut memo = HashMap::new();
        let mut skipped = Vec::new();
        let mut last_err = None;
        for &g in gens.iter().rev() {
            match self.load_generation(g, &mut memo, 0) {
                Ok(arc) => {
                    self.m.recover_latency.record(now_us().saturating_sub(start));
                    self.m.recover_fallbacks.add(skipped.len() as u64);
                    let payload = arc.as_ref().clone();
                    *self.last.lock().expect("ckpt last") = Some((g, arc));
                    return Ok(Recovery::Loaded { generation: g, payload, skipped });
                }
                Err(e) => {
                    if matches!(e, FsError::Corrupt(_)) {
                        self.m.recover_torn.inc();
                    }
                    skipped.push(g);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("generations were non-empty"))
    }

    /// Fully verify generation `g` (manifest, every segment CRC, every
    /// frame CRC, delta chain, reconstructed length).
    pub fn verify(&self, g: u64) -> Result<VerifyReport, FsError> {
        let manifest = self.manifest(g)?;
        let mut memo = HashMap::new();
        let payload = self.load_generation(g, &mut memo, 0)?;
        let mut chain = Vec::new();
        let mut cur = manifest.base;
        while let Some(b) = cur {
            chain.push(b);
            cur = self.manifest(b)?.base;
        }
        Ok(VerifyReport {
            generation: g,
            base: manifest.base,
            raw_bytes: payload.len() as u64,
            stored_bytes: manifest.stored_bytes,
            chunks: manifest.segments.iter().map(|s| u64::from(s.chunks)).sum(),
            segments: manifest.segments.len(),
            chain,
        })
    }

    /// Reconstruct generation `g`'s payload, CRC-verifying everything and
    /// recursively loading its delta base. `memo` caches payloads across
    /// the recovery scan so a shared base decodes once.
    fn load_generation(
        &self,
        g: u64,
        memo: &mut HashMap<u64, Arc<Vec<u8>>>,
        depth: usize,
    ) -> Result<Arc<Vec<u8>>, FsError> {
        if let Some(p) = memo.get(&g) {
            return Ok(Arc::clone(p));
        }
        if depth > 64 {
            return Err(FsError::Corrupt(format!("generation {g}: delta chain too deep")));
        }
        let manifest = self.manifest(g)?;
        if manifest.generation != g {
            return Err(FsError::Corrupt(format!(
                "manifest gen{g:08} claims generation {}",
                manifest.generation
            )));
        }
        let base = match manifest.base {
            Some(b) if b >= g => {
                return Err(FsError::Corrupt(format!("generation {g}: base {b} is not older")));
            }
            Some(b) => Some(self.load_generation(b, memo, depth + 1)?),
            None => None,
        };
        let cs = manifest.chunk_size as usize;
        let mut out = Vec::with_capacity(manifest.raw_bytes as usize);
        let mut chunk_index = 0usize;
        for sm in &manifest.segments {
            let path = format!("{}/{}", self.gen_dir(g), sm.name);
            let bytes = self.fs.read_whole(&path)?;
            if bytes.len() as u64 != sm.bytes || crc32(&bytes) != sm.crc {
                return Err(FsError::Corrupt(format!(
                    "{path}: segment does not match its manifest"
                )));
            }
            let frames = decode_segment(&bytes)?;
            if frames.len() != sm.chunks as usize {
                return Err(FsError::Corrupt(format!(
                    "{path}: {} frames, manifest says {}",
                    frames.len(),
                    sm.chunks
                )));
            }
            for f in frames {
                let raw = self.fs.state().decompress_timed(
                    f.codec,
                    &f.payload,
                    f.raw_len as usize,
                    &path,
                )?;
                if f.is_delta() {
                    let b = base.as_ref().ok_or_else(|| {
                        FsError::Corrupt(format!("{path}: delta frame in a full generation"))
                    })?;
                    out.extend_from_slice(&decode_chunk_delta(b, &raw, cs, chunk_index));
                } else {
                    out.extend_from_slice(&raw);
                }
                // The frame scratch came from the node's pool; hand it
                // back so the next chunk decodes allocation-free.
                self.fs.state().pool.put(raw);
                chunk_index += 1;
            }
        }
        if out.len() as u64 != manifest.raw_bytes {
            return Err(FsError::Corrupt(format!(
                "generation {g}: reconstructed {} bytes, manifest says {}",
                out.len(),
                manifest.raw_bytes
            )));
        }
        let arc = Arc::new(out);
        memo.insert(g, Arc::clone(&arc));
        Ok(arc)
    }

    /// Remove generations beyond the newest `keep_last`, preserving any
    /// older generation still referenced as a delta base. Manifests are
    /// unlinked *first* (unpublishing the generation), then segments, so
    /// a crash mid-GC leaves orphan segments, never a manifest naming
    /// missing ones.
    pub fn gc(&self) -> Result<GcReport, FsError> {
        let gens = self.generations()?;
        if self.cfg.keep_last == 0 || gens.len() <= self.cfg.keep_last {
            return Ok(GcReport { removed: Vec::new(), kept: gens });
        }
        let mut keep: BTreeSet<u64> =
            gens[gens.len() - self.cfg.keep_last..].iter().copied().collect();
        let mut frontier: Vec<u64> = keep.iter().copied().collect();
        while let Some(g) = frontier.pop() {
            if let Ok(m) = self.manifest(g) {
                if let Some(b) = m.base {
                    if keep.insert(b) {
                        frontier.push(b);
                    }
                }
            }
        }
        let removed: Vec<u64> = gens.iter().copied().filter(|g| !keep.contains(g)).collect();
        let replicas: Vec<usize> = if self.cfg.replicas == 0 || self.fs.nodes() < 2 {
            Vec::new()
        } else {
            replicas_of(self.owner, self.fs.nodes(), self.cfg.replicas)
                .into_iter()
                .filter(|&r| r != self.fs.rank())
                .collect()
        };
        for &g in &removed {
            // Enumerate segments from the directory, not the manifest, so
            // an unreadable manifest can't strand its segments.
            let gen_dir = self.gen_dir(g);
            let mut seg_names: Vec<String> = Vec::new();
            if let Ok(mut stream) = self.fs.opendir(&gen_dir) {
                while let Some(name) = stream.next_entry() {
                    seg_names.push(name.to_string());
                }
            }
            let mpath = self.manifest_path(g);
            let _ = self.fs.unlink(&mpath);
            for &r in &replicas {
                let _ = self.fs.unlink_remote(r, &mpath);
            }
            for name in seg_names {
                let path = format!("{gen_dir}/{name}");
                let _ = self.fs.unlink(&path);
                for &r in &replicas {
                    let _ = self.fs.unlink_remote(r, &path);
                }
            }
            self.m.gc_removed.inc();
        }
        let kept: Vec<u64> = gens.into_iter().filter(|g| keep.contains(g)).collect();
        Ok(GcReport { removed, kept })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, FanStore};
    use crate::prep::{prepare, PrepConfig};

    fn partitions(n: usize) -> Vec<Vec<u8>> {
        let files =
            vec![("train/seed.bin".to_string(), b"seed data for the cluster ".repeat(8).to_vec())];
        prepare(files, &PrepConfig { partitions: n, ..Default::default() }).partitions
    }

    fn small_cfg() -> CkptConfig {
        CkptConfig {
            tag: "test".to_string(),
            chunk_size: 1024,
            chunks_per_segment: 4,
            full_every: 0,
            replicas: 0,
            ..Default::default()
        }
    }

    /// A payload that evolves slightly per generation, like model weights
    /// between epochs: mostly identical bytes, sparse drift.
    fn gen_payload(g: u64) -> Vec<u8> {
        (0..8000usize)
            .map(|i| {
                let base = (i * 31) as u8;
                if i.is_multiple_of(97) {
                    base.wrapping_add(g as u8)
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn delta_chain_roundtrips_three_generations() {
        FanStore::run(ClusterConfig::default(), partitions(1), |fs| {
            let store = CheckpointStore::new(fs, small_cfg());
            let payloads: Vec<Vec<u8>> = (1..=3).map(gen_payload).collect();
            let mut reports = Vec::new();
            for (i, p) in payloads.iter().enumerate() {
                reports.push(store.put(i as u64 + 1, p).unwrap());
            }
            assert_eq!(reports[0].base, None, "first generation has no base");
            assert_eq!(reports[1].base, Some(1));
            assert_eq!(reports[2].base, Some(2));
            assert!(reports[2].delta_chunks > 0, "sparse drift must pick deltas");
            assert!(
                reports[2].stored_bytes < reports[0].stored_bytes,
                "delta generation must be smaller than the full one ({} vs {})",
                reports[2].stored_bytes,
                reports[0].stored_bytes
            );
            // A cold store (no cached base — the restart case) must
            // reconstruct the whole chain byte-identically.
            let cold = CheckpointStore::new(fs, small_cfg());
            match cold.recover().unwrap() {
                Recovery::Loaded { generation, payload, skipped } => {
                    assert_eq!(generation, 3);
                    assert_eq!(payload, payloads[2], "3-gen delta chain roundtrips exactly");
                    assert!(skipped.is_empty());
                }
                Recovery::Fresh => panic!("three generations were published"),
            }
            let v = cold.verify(3).unwrap();
            assert_eq!(v.chain, vec![2, 1], "verify walks the base chain");
            assert_eq!(v.raw_bytes, payloads[2].len() as u64);
        });
    }

    #[test]
    fn torn_generation_falls_back_to_previous() {
        FanStore::run(ClusterConfig::default(), partitions(1), |fs| {
            let store = CheckpointStore::new(fs, small_cfg());
            store.put(1, &gen_payload(1)).unwrap();
            store.put(2, &gen_payload(2)).unwrap();
            // Tear generation 2: truncate its first segment, simulating a
            // crash that corrupted the stored object after publish.
            let seg = format!("{}/seg0000", store.gen_dir(2));
            let bytes = fs.read_whole(&seg).unwrap();
            fs.unlink(&seg).unwrap();
            fs.write_whole(&seg, &bytes[..bytes.len() - 3]).unwrap();
            let cold = CheckpointStore::new(fs, small_cfg());
            match cold.recover().unwrap() {
                Recovery::Loaded { generation, payload, skipped } => {
                    assert_eq!(generation, 1, "recovery must fall back past the torn gen");
                    assert_eq!(payload, gen_payload(1), "fallback payload is byte-identical");
                    assert_eq!(skipped, vec![2]);
                }
                Recovery::Fresh => panic!("generation 1 is intact"),
            }
            let snap = fs.state().metrics.snapshot();
            assert!(snap.counter("ckpt.recover.torn") >= 1);
            assert_eq!(snap.counter("ckpt.recover.fallbacks"), 1);
        });
    }

    #[test]
    fn replica_recovers_a_dead_owners_checkpoint() {
        let cfg = || CkptConfig { replicas: 1, ..small_cfg() };
        let results =
            FanStore::run(ClusterConfig { nodes: 2, ..Default::default() }, partitions(2), |fs| {
                if fs.rank() == 0 {
                    let store = CheckpointStore::new(fs, cfg());
                    let r = store.put(1, &gen_payload(1)).unwrap();
                    assert_eq!(r.replicate_failures, 0, "rank 1 is up; pushes must land");
                    return true;
                }
                // Rank 1 plays the survivor: wait for the replicated
                // manifest to appear, then recover rank 0's lineage from
                // the local replica copies alone.
                let store = CheckpointStore::for_rank(fs, cfg(), 0);
                for _ in 0..2000 {
                    if !store.generations().unwrap().is_empty() {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                match store.recover().unwrap() {
                    Recovery::Loaded { generation, payload, .. } => {
                        assert_eq!(generation, 1);
                        assert_eq!(payload, gen_payload(1), "replica copy is byte-identical");
                        true
                    }
                    Recovery::Fresh => panic!("replica never received the checkpoint"),
                }
            });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn gc_keeps_delta_bases_alive() {
        FanStore::run(ClusterConfig::default(), partitions(1), |fs| {
            let cfg = CkptConfig { full_every: 2, keep_last: 1, ..small_cfg() };
            let store = CheckpointStore::new(fs, cfg.clone());
            for g in 1..=5u64 {
                store.put(g, &gen_payload(g)).unwrap();
            }
            assert_eq!(store.manifest(5).unwrap().base, Some(4), "gen 5 deltas against 4");
            let report = store.gc().unwrap();
            assert_eq!(report.removed, vec![1, 2, 3]);
            assert_eq!(report.kept, vec![4, 5], "4 survives as 5's delta base");
            assert_eq!(store.generations().unwrap(), vec![4, 5]);
            assert!(
                matches!(fs.read_whole(&store.manifest_path(2)), Err(FsError::NotFound(_))),
                "removed manifests are gone"
            );
            // The surviving chain still restores.
            let cold = CheckpointStore::new(fs, cfg);
            match cold.recover().unwrap() {
                Recovery::Loaded { generation, payload, .. } => {
                    assert_eq!(generation, 5);
                    assert_eq!(payload, gen_payload(5));
                }
                Recovery::Fresh => panic!("gens 4 and 5 were kept"),
            }
        });
    }
}
