//! Per-chunk frame format for checkpoint segments.
//!
//! A segment is a byte-concatenation of frames, one frame per chunk:
//!
//! ```text
//! [flags u8][codec u16][raw_len u32][stored_len u32][crc32 u32][payload …]
//! ```
//!
//! (all integers little-endian). `crc32` covers the stored payload, so
//! every chunk verifies independently; `raw_len` is the chunk's length
//! after decompression (and delta reversal — a delta buffer is exactly as
//! long as the chunk it encodes). Flag bit 0 marks the payload as a
//! byte-delta against the base generation's chunk at the same index.
//!
//! [`scan_segment`] is the *tolerant* reader used by recovery: it parses
//! frames until the first truncated or CRC-failing one and reports the
//! torn tail instead of erroring, mirroring how a crash tears the end of
//! an append-only log. [`decode_segment`] is the strict form used on
//! verified restore paths, where a torn frame is corruption.

use fanstore_compress::crc32::crc32;
use fanstore_compress::CodecId;

use crate::FsError;

/// Frame header length in bytes.
pub const HEADER: usize = 1 + 2 + 4 + 4 + 4;

/// Flag bit 0: the payload decompresses to a byte-delta against the base
/// generation's chunk at the same index.
pub const FLAG_DELTA: u8 = 1;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame flags ([`FLAG_DELTA`]).
    pub flags: u8,
    /// Codec of `payload`.
    pub codec: CodecId,
    /// Chunk length after decompression (and delta reversal).
    pub raw_len: u32,
    /// Stored (compressed) bytes, CRC-verified.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Whether the payload is delta-encoded against the base generation.
    pub fn is_delta(&self) -> bool {
        self.flags & FLAG_DELTA != 0
    }
}

/// Append one frame to `out`.
pub fn encode_frame(out: &mut Vec<u8>, flags: u8, codec: CodecId, raw_len: u32, payload: &[u8]) {
    out.push(flags);
    out.extend_from_slice(&codec.0.to_le_bytes());
    out.extend_from_slice(&raw_len.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Tolerant scan: parse frames front-to-back, stopping at the first
/// truncated header, truncated payload, or CRC mismatch. Returns the
/// frames that verified plus whether a torn tail was found.
pub fn scan_segment(buf: &[u8]) -> (Vec<Frame>, bool) {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        if pos + HEADER > buf.len() {
            return (frames, true);
        }
        let flags = buf[pos];
        let codec = CodecId(u16::from_le_bytes(buf[pos + 1..pos + 3].try_into().expect("2 bytes")));
        let raw_len = u32::from_le_bytes(buf[pos + 3..pos + 7].try_into().expect("4 bytes"));
        let stored_len =
            u32::from_le_bytes(buf[pos + 7..pos + 11].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[pos + 11..pos + 15].try_into().expect("4 bytes"));
        let start = pos + HEADER;
        let Some(payload) = buf.get(start..start.saturating_add(stored_len)) else {
            return (frames, true);
        };
        if crc32(payload) != crc {
            return (frames, true);
        }
        frames.push(Frame { flags, codec, raw_len, payload: payload.to_vec() });
        pos = start + stored_len;
    }
    (frames, false)
}

/// Strict decode: every byte must belong to a verified frame. Used on
/// restore paths where the segment was already matched against its
/// manifest CRC — a torn tail here is corruption, not a crash artifact.
pub fn decode_segment(buf: &[u8]) -> Result<Vec<Frame>, FsError> {
    match scan_segment(buf) {
        (frames, false) => Ok(frames),
        (_, true) => Err(FsError::Corrupt("segment has a torn or corrupt tail".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore_compress::CodecFamily;

    fn codec() -> CodecId {
        CodecId::new(CodecFamily::Store, 0)
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut seg = Vec::new();
        encode_frame(&mut seg, 0, codec(), 4, b"abcd");
        encode_frame(&mut seg, FLAG_DELTA, codec(), 9, b"x");
        let frames = decode_segment(&seg).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].payload, b"abcd");
        assert!(!frames[0].is_delta());
        assert_eq!(frames[1].raw_len, 9);
        assert!(frames[1].is_delta());
    }

    #[test]
    fn torn_tail_tolerated_by_scan_rejected_by_decode() {
        let mut seg = Vec::new();
        encode_frame(&mut seg, 0, codec(), 4, b"abcd");
        encode_frame(&mut seg, 0, codec(), 6, b"efghij");
        for cut in 1..HEADER + 6 {
            let torn = &seg[..seg.len() - cut];
            let (frames, is_torn) = scan_segment(torn);
            assert!(is_torn, "cut {cut}: tail must read as torn");
            assert_eq!(frames.len(), 1, "cut {cut}: intact prefix survives");
            assert_eq!(frames[0].payload, b"abcd");
            assert!(decode_segment(torn).is_err(), "strict decode rejects");
        }
    }

    #[test]
    fn corrupt_payload_detected_by_crc() {
        let mut seg = Vec::new();
        encode_frame(&mut seg, 0, codec(), 8, b"payload!");
        let last = seg.len() - 1;
        seg[last] ^= 0x10;
        let (frames, torn) = scan_segment(&seg);
        assert!(torn);
        assert!(frames.is_empty());
    }

    #[test]
    fn empty_segment_is_whole() {
        let (frames, torn) = scan_segment(&[]);
        assert!(frames.is_empty());
        assert!(!torn);
        assert!(decode_segment(&[]).unwrap().is_empty());
    }
}
