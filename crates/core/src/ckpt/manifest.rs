//! Generation manifests: the atomic publish point of a checkpoint.
//!
//! A manifest names every segment of one generation, with per-segment
//! byte counts and CRCs, and records whether the generation is delta
//! encoded against an earlier one. It is written *after* all segments —
//! under FanStore's write-once model an object only becomes visible when
//! it is finalised, so the manifest's appearance is the commit: a crash
//! anywhere before it leaves the generation invisible, never torn.
//!
//! Layout (little-endian):
//!
//! ```text
//! "FSCK" | version u16 | generation u64 | base u64 (u64::MAX = full)
//! | chunk_size u32 | raw_bytes u64 | stored_bytes u64 | seg_count u32
//! | seg_count × ([u16 name_len][name][u32 chunks][u64 bytes][u32 crc])
//! | crc32 u32 over everything above
//! ```

use fanstore_compress::crc32::crc32;

use crate::FsError;

/// Manifest magic bytes.
pub const MAGIC: [u8; 4] = *b"FSCK";

/// Current manifest format version.
pub const VERSION: u16 = 1;

/// `base` sentinel for a full (non-delta) generation.
const FULL: u64 = u64::MAX;

/// One segment as named by a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name of the segment inside the generation directory.
    pub name: String,
    /// Number of chunk frames in the segment.
    pub chunks: u32,
    /// Segment length in bytes.
    pub bytes: u64,
    /// CRC32 of the whole segment blob (cheap pre-parse integrity check).
    pub crc: u32,
}

/// A generation manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Generation number.
    pub generation: u64,
    /// Base generation for delta frames (`None` = full generation).
    pub base: Option<u64>,
    /// Chunk size the payload was split with.
    pub chunk_size: u32,
    /// Uncompressed payload length.
    pub raw_bytes: u64,
    /// Total stored segment bytes.
    pub stored_bytes: u64,
    /// Segments, in chunk order.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// Serialise, appending the trailing CRC32.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.segments.len() * 32);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.base.unwrap_or(FULL).to_le_bytes());
        out.extend_from_slice(&self.chunk_size.to_le_bytes());
        out.extend_from_slice(&self.raw_bytes.to_le_bytes());
        out.extend_from_slice(&self.stored_bytes.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for s in &self.segments {
            out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&s.chunks.to_le_bytes());
            out.extend_from_slice(&s.bytes.to_le_bytes());
            out.extend_from_slice(&s.crc.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and CRC-verify a manifest.
    pub fn decode(buf: &[u8]) -> Result<Manifest, FsError> {
        let corrupt = |m: &str| FsError::Corrupt(format!("manifest: {m}"));
        if buf.len() < 4 + 2 + 8 + 8 + 4 + 8 + 8 + 4 + 4 {
            return Err(corrupt("truncated"));
        }
        let (body, tail) = buf.split_at(buf.len() - 4);
        let expect = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
        let actual = crc32(body);
        if expect != actual {
            return Err(corrupt(&format!(
                "CRC mismatch: stored {expect:08x}, computed {actual:08x}"
            )));
        }
        if body[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u16::from_le_bytes(body[4..6].try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let generation = u64::from_le_bytes(body[6..14].try_into().expect("8 bytes"));
        let base_raw = u64::from_le_bytes(body[14..22].try_into().expect("8 bytes"));
        let chunk_size = u32::from_le_bytes(body[22..26].try_into().expect("4 bytes"));
        let raw_bytes = u64::from_le_bytes(body[26..34].try_into().expect("8 bytes"));
        let stored_bytes = u64::from_le_bytes(body[34..42].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(body[42..46].try_into().expect("4 bytes")) as usize;
        let mut pos = 46usize;
        let mut segments = Vec::with_capacity(count.min(4096));
        for i in 0..count {
            let nlen = u16::from_le_bytes(
                body.get(pos..pos + 2)
                    .ok_or_else(|| corrupt("segment truncated"))?
                    .try_into()
                    .expect("2 bytes"),
            ) as usize;
            pos += 2;
            let name = std::str::from_utf8(
                body.get(pos..pos + nlen).ok_or_else(|| corrupt("segment truncated"))?,
            )
            .map_err(|_| corrupt(&format!("segment {i} name not utf-8")))?
            .to_string();
            pos += nlen;
            let rest = body.get(pos..pos + 16).ok_or_else(|| corrupt("segment truncated"))?;
            let chunks = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
            let bytes = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
            let crc = u32::from_le_bytes(rest[12..16].try_into().expect("4 bytes"));
            pos += 16;
            segments.push(SegmentMeta { name, chunks, bytes, crc });
        }
        if pos != body.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(Manifest {
            generation,
            base: (base_raw != FULL).then_some(base_raw),
            chunk_size,
            raw_bytes,
            stored_bytes,
            segments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            generation: 7,
            base: Some(4),
            chunk_size: 65536,
            raw_bytes: 1_000_000,
            stored_bytes: 123_456,
            segments: vec![
                SegmentMeta { name: "seg0000".into(), chunks: 16, bytes: 60_000, crc: 0xDEAD },
                SegmentMeta { name: "seg0001".into(), chunks: 3, bytes: 63_456, crc: 0xBEEF },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        let full = Manifest { base: None, segments: Vec::new(), ..sample() };
        assert_eq!(Manifest::decode(&full.encode()).unwrap(), full);
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let buf = sample().encode();
        for i in (0..buf.len()).step_by(7) {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(Manifest::decode(&bad).is_err(), "flip at byte {i} must be caught");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let buf = sample().encode();
        for cut in 1..buf.len() {
            assert!(Manifest::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }
}
