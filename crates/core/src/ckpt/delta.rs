//! Chunk-aligned cross-generation delta encoding.
//!
//! A delta frame stores `xdelta(base_chunk, chunk)` — the byte-wise
//! wrapping difference against the *same chunk index* of the base
//! generation (see [`fanstore_compress::filters::xdelta`]). Consecutive
//! model checkpoints differ in few bytes, so the difference is mostly
//! zeros and compresses far better than either snapshot. The delta buffer
//! is exactly as long as the current chunk, so length bookkeeping never
//! depends on the base; a base shorter (or longer) than the current
//! generation simply contributes fewer (or surplus) bytes and the tail is
//! carried verbatim.

use fanstore_compress::filters::{unxdelta, xdelta};

/// Chunk `index` of `buf` under `chunk_size` slicing (empty past EOF).
pub fn chunk_of(buf: &[u8], chunk_size: usize, index: usize) -> &[u8] {
    let start = index.saturating_mul(chunk_size);
    if start >= buf.len() {
        return &[];
    }
    &buf[start..(start + chunk_size).min(buf.len())]
}

/// Delta-encode `cur_chunk` (chunk `index` of the current generation)
/// against the matching chunk of `base`.
pub fn encode_chunk_delta(
    base: &[u8],
    cur_chunk: &[u8],
    chunk_size: usize,
    index: usize,
) -> Vec<u8> {
    xdelta(chunk_of(base, chunk_size, index), cur_chunk)
}

/// Reverse [`encode_chunk_delta`]: reconstruct chunk `index` from the
/// base generation and the delta buffer.
pub fn decode_chunk_delta(base: &[u8], delta: &[u8], chunk_size: usize, index: usize) -> Vec<u8> {
    unxdelta(chunk_of(base, chunk_size, index), delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_slicing_covers_and_bounds() {
        let buf: Vec<u8> = (0..10u8).collect();
        assert_eq!(chunk_of(&buf, 4, 0), &[0, 1, 2, 3]);
        assert_eq!(chunk_of(&buf, 4, 2), &[8, 9], "short tail chunk");
        assert_eq!(chunk_of(&buf, 4, 3), &[] as &[u8], "past EOF is empty");
        assert_eq!(chunk_of(&[], 4, 0), &[] as &[u8]);
    }

    #[test]
    fn delta_roundtrips_per_chunk() {
        let base: Vec<u8> = (0..1000u32).map(|i| (i * 13) as u8).collect();
        let mut cur = base.clone();
        cur[100] ^= 0xFF;
        cur[900] = 0;
        let cs = 256;
        for index in 0..4 {
            let chunk = chunk_of(&cur, cs, index).to_vec();
            let d = encode_chunk_delta(&base, &chunk, cs, index);
            assert_eq!(d.len(), chunk.len());
            assert_eq!(decode_chunk_delta(&base, &d, cs, index), chunk);
        }
    }

    #[test]
    fn grown_and_shrunk_generations_roundtrip() {
        let base = vec![7u8; 500];
        // Grown: chunks past the base's end delta against nothing.
        let grown: Vec<u8> = (0..900u32).map(|i| i as u8).collect();
        let cs = 256;
        for index in 0..4 {
            let chunk = chunk_of(&grown, cs, index).to_vec();
            let d = encode_chunk_delta(&base, &chunk, cs, index);
            assert_eq!(decode_chunk_delta(&base, &d, cs, index), chunk);
        }
        // Shrunk: the last chunk is shorter than the base's.
        let shrunk = vec![9u8; 300];
        for index in 0..2 {
            let chunk = chunk_of(&shrunk, cs, index).to_vec();
            let d = encode_chunk_delta(&base, &chunk, cs, index);
            assert_eq!(decode_chunk_delta(&base, &d, cs, index), chunk);
        }
    }

    #[test]
    fn identical_chunks_give_zero_deltas() {
        let buf: Vec<u8> = (0..512u32).map(|i| (i * 31) as u8).collect();
        let d = encode_chunk_delta(&buf, chunk_of(&buf, 128, 1), 128, 1);
        assert!(d.iter().all(|&b| b == 0), "identical chunk deltas are all zero");
    }
}
