//! Node-local storage backends for the compressed objects.
//!
//! The paper supports two backends (§IV-C1): compressed file data "stored
//! as byte arrays in a hash table" when users specify RAM, or "stored in
//! the local file system" when the backend is a local disk (SSD).
//! [`RamBackend`] and [`DiskBackend`] implement both; the daemon and
//! client are backend-agnostic.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fanstore_compress::CodecId;
use parking_lot::RwLock;

use crate::node::LocalObject;
use crate::stat::FileStat;
use crate::FsError;

/// A store of compressed objects keyed by path.
pub trait Backend: Send + Sync {
    /// Insert (or replace) an object.
    fn put(&self, path: &str, obj: LocalObject) -> Result<(), FsError>;

    /// Fetch an object (the compressed bytes plus codec/stat).
    fn get(&self, path: &str) -> Option<LocalObject>;

    /// Whether a path is present.
    fn contains(&self, path: &str) -> bool;

    /// Number of objects held.
    fn len(&self) -> usize;

    /// Compressed bytes held.
    fn bytes(&self) -> u64;

    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAM backend: a hash table of byte arrays (the paper's default).
#[derive(Default)]
pub struct RamBackend {
    map: RwLock<HashMap<String, LocalObject>>,
    bytes: AtomicU64,
}

impl RamBackend {
    /// Empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for RamBackend {
    fn put(&self, path: &str, obj: LocalObject) -> Result<(), FsError> {
        let size = obj.data.len() as u64;
        if let Some(old) = self.map.write().insert(path.to_string(), obj) {
            self.bytes.fetch_sub(old.data.len() as u64, Ordering::Relaxed);
        }
        self.bytes.fetch_add(size, Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, path: &str) -> Option<LocalObject> {
        self.map.read().get(path).cloned()
    }

    fn contains(&self, path: &str) -> bool {
        self.map.read().contains_key(path)
    }

    fn len(&self) -> usize {
        self.map.read().len()
    }

    fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Disk backend: compressed objects live as files in a local directory
/// (the burst-buffer SSD); metadata stays in RAM.
pub struct DiskBackend {
    dir: PathBuf,
    index: RwLock<HashMap<String, (CodecId, FileStat, u64)>>,
    bytes: AtomicU64,
    seq: AtomicU64,
}

impl DiskBackend {
    /// Create under `dir` (created if missing).
    pub fn new(dir: PathBuf) -> Result<Self, FsError> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| FsError::Comm(format!("backend dir {}: {e}", dir.display())))?;
        Ok(DiskBackend {
            dir,
            index: RwLock::new(HashMap::new()),
            bytes: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        })
    }

    /// Create under a fresh unique directory in the system temp dir.
    pub fn new_temp(tag: &str) -> Result<Self, FsError> {
        let pid = std::process::id();
        let unique = format!(
            "fanstore-{tag}-{pid}-{:x}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        Self::new(std::env::temp_dir().join(unique))
    }

    fn object_file(&self, id: u64) -> PathBuf {
        self.dir.join(format!("obj{id:012}.bin"))
    }
}

impl Backend for DiskBackend {
    fn put(&self, path: &str, obj: LocalObject) -> Result<(), FsError> {
        let id = self.seq.fetch_add(1, Ordering::Relaxed);
        let file = self.object_file(id);
        std::fs::write(&file, &*obj.data)
            .map_err(|e| FsError::Comm(format!("backend write {}: {e}", file.display())))?;
        let size = obj.data.len() as u64;
        let mut index = self.index.write();
        if let Some((_, _, old_id)) = index.insert(path.to_string(), (obj.codec, obj.stat, id)) {
            let _ = std::fs::remove_file(self.object_file(old_id));
        }
        drop(index);
        self.bytes.fetch_add(size, Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, path: &str) -> Option<LocalObject> {
        let (codec, stat, id) = *self.index.read().get(path)?;
        let data = std::fs::read(self.object_file(id)).ok()?;
        Some(LocalObject { codec, stat, data: Arc::new(data) })
    }

    fn contains(&self, path: &str) -> bool {
        self.index.read().contains_key(path)
    }

    fn len(&self) -> usize {
        self.index.read().len()
    }

    fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Drop for DiskBackend {
    fn drop(&mut self) {
        // Best-effort cleanup of the backing directory.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Which backend a cluster uses.
#[derive(Debug, Clone, Default)]
pub enum BackendKind {
    /// In-RAM hash table (paper default; fastest).
    #[default]
    Ram,
    /// Local file system under a temp directory (models the SSD backend).
    DiskTemp,
    /// Local file system under an explicit directory.
    Disk(PathBuf),
}

impl BackendKind {
    /// Instantiate a backend for `rank`.
    pub fn create(&self, rank: usize) -> Result<Box<dyn Backend>, FsError> {
        Ok(match self {
            BackendKind::Ram => Box::new(RamBackend::new()),
            BackendKind::DiskTemp => Box::new(DiskBackend::new_temp(&format!("rank{rank}"))?),
            BackendKind::Disk(dir) => Box::new(DiskBackend::new(dir.join(format!("rank{rank}")))?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fanstore_compress::CodecFamily;

    fn obj(data: &[u8]) -> LocalObject {
        LocalObject {
            codec: CodecId::new(CodecFamily::Store, 0),
            stat: FileStat::regular(1, data.len() as u64),
            data: Arc::new(data.to_vec()),
        }
    }

    fn exercise(backend: &dyn Backend) {
        assert!(backend.is_empty());
        backend.put("a/b.bin", obj(b"hello")).unwrap();
        backend.put("c.bin", obj(&[9u8; 100])).unwrap();
        assert_eq!(backend.len(), 2);
        assert_eq!(backend.bytes(), 105);
        assert!(backend.contains("a/b.bin"));
        assert!(!backend.contains("missing"));
        let got = backend.get("a/b.bin").unwrap();
        assert_eq!(&*got.data, b"hello");
        assert_eq!(got.stat.size, 5);
        assert!(backend.get("missing").is_none());
    }

    #[test]
    fn ram_backend_basics() {
        exercise(&RamBackend::new());
    }

    #[test]
    fn disk_backend_basics() {
        let b = DiskBackend::new_temp("test-basics").unwrap();
        exercise(&b);
    }

    #[test]
    fn disk_backend_persists_across_get_calls() {
        let b = DiskBackend::new_temp("test-persist").unwrap();
        b.put("f", obj(&[7u8; 4096])).unwrap();
        for _ in 0..3 {
            assert_eq!(b.get("f").unwrap().data.len(), 4096);
        }
    }

    #[test]
    fn disk_backend_cleans_up_on_drop() {
        let dir;
        {
            let b = DiskBackend::new_temp("test-cleanup").unwrap();
            b.put("f", obj(b"x")).unwrap();
            dir = b.dir.clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "backing dir should be removed on drop");
    }

    #[test]
    fn replace_updates_accounting() {
        let b = RamBackend::new();
        b.put("f", obj(&[0u8; 100])).unwrap();
        b.put("f", obj(&[0u8; 40])).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.bytes(), 40);
    }

    #[test]
    fn backend_kind_creates() {
        assert!(BackendKind::Ram.create(0).is_ok());
        let disk = BackendKind::DiskTemp.create(1).unwrap();
        disk.put("x", obj(b"y")).unwrap();
        assert_eq!(disk.len(), 1);
    }
}
