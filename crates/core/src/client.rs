//! The POSIX-style client interface (paper §IV-A, Listing 1).
//!
//! The original FanStore intercepts ten glibc calls (`open`, `close`,
//! `read`, `lseek`, `write`, `opendir`, `readdir`, `closedir`, `stat`)
//! with LD_PRELOAD and trampolines. This reproduction exposes the same
//! surface as methods on [`FsClient`], with per-client file-descriptor
//! tables and the paper's multi-read/single-write consistency model:
//! input files may be opened concurrently by any number of readers;
//! output files are written once by one process and are immutable after
//! `close()`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fanstore_compress::CodecId;
use mpi_sim::{CommError, RemoteSender, RpcMeta};
use parking_lot::Mutex;

use crate::backend::Backend;
use crate::daemon::{
    decode_get_many_reply, decode_get_many_reply_v2, decode_get_reply, encode_get_many_request,
    encode_get_many_request_v2, tags, GetManyItem, GetManySpec, MAX_BATCH,
};
use crate::meta::encode_single;
use crate::metrics::{now_us, Counter, Gauge, Histogram};
use crate::node::NodeState;
use crate::placement::replicas_of;
use crate::qos::{QosPolicy, SloTracker, TenantId, TokenBucket};
use crate::stat::FileStat;
use crate::trace::{Op, SpanEvent, TraceRecorder};
use crate::FsError;

/// Client-side recovery policy for remote operations.
///
/// When attached ([`FsClient::with_failover`]), every remote rpc runs
/// under a deadline and failed GETs retry against the ring replicas of
/// the owner ([`replicas_of`]) with bounded exponential backoff and
/// deterministic seeded jitter. Timeouts, CRC failures and replica
/// retries are counted in [`crate::node::NodeStats`]; a read that needed
/// any recovery marks the node degraded rather than failing training.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Per-attempt rpc deadline.
    pub rpc_timeout: Duration,
    /// Ring-replication rounds the cluster performed (replica count − 1);
    /// fixes the failover order via [`replicas_of`].
    pub replica_rounds: usize,
    /// Attempts per replica before moving to the next one (≥ 1).
    pub attempts_per_replica: u32,
    /// Backoff before the second attempt; doubles every attempt after.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_max: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Per-operation retry budget: at most this many *retries* (attempts
    /// after the first) across all replicas before the op fails with the
    /// last error; exhaustions are counted in
    /// `NodeStats::retry_exhausted`. 0 = unlimited (the pre-budget
    /// behaviour: replicas × attempts_per_replica attempts).
    pub retry_budget: u32,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            rpc_timeout: Duration::from_millis(250),
            replica_rounds: 0,
            attempts_per_replica: 2,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(20),
            seed: 0,
            retry_budget: 8,
        }
    }
}

/// FNV-1a of a path (stable input to the jitter hash).
fn fnv64(path: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in path.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finaliser for the jitter stream.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Backoff before retry number `attempt` (1-based): exponential from
/// `base`, capped at `max`, plus up to 25% deterministic jitter derived
/// from `(seed, path, attempt)`. Shared by the replica-failover and the
/// QoS-admission retry loops.
fn seeded_backoff(base: Duration, max: Duration, seed: u64, path: &str, attempt: u32) -> Duration {
    let shift = (attempt.saturating_sub(1)).min(20);
    let exp = base.saturating_mul(1u32 << shift);
    let capped = exp.min(max);
    let h = mix64(seed ^ fnv64(path) ^ u64::from(attempt));
    capped + capped.mul_f64((h % 1024) as f64 / 4096.0)
}

/// [`seeded_backoff`] parameterised by a [`FailoverConfig`].
fn backoff_delay(cfg: &FailoverConfig, path: &str, attempt: u32) -> Duration {
    seeded_backoff(cfg.backoff_base, cfg.backoff_max, cfg.seed, path, attempt)
}

/// Bounds-checked slice `[start, end)` of a decoded file.
fn slice_range(data: &[u8], start: u64, end: u64, path: &str) -> Result<Vec<u8>, FsError> {
    let (a, b) = (start as usize, end as usize);
    if a >= b || b > data.len() {
        return Err(FsError::BadRange(format!("{path}: [{start}, {end}) of {}", data.len())));
    }
    Ok(data[a..b].to_vec())
}

/// Seek origin for [`FsClient::lseek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// From the start of the file (`SEEK_SET`).
    Set,
    /// From the current position (`SEEK_CUR`).
    Cur,
    /// From the end of the file (`SEEK_END`).
    End,
}

enum OpenFile {
    Read { path: String, data: Arc<Vec<u8>>, pos: usize },
    Write { path: String, buf: Vec<u8> },
}

/// An open directory stream (`DIR*`).
pub struct DirStream {
    entries: Vec<String>,
    pos: usize,
}

impl DirStream {
    /// `readdir()`: next entry name, or `None` at end of stream.
    pub fn next_entry(&mut self) -> Option<&str> {
        let e = self.entries.get(self.pos)?;
        self.pos += 1;
        Some(e)
    }

    /// Remaining + consumed entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Client-side instrument handles, resolved once at construction so the
/// hot path records through `Arc`s instead of registry lookups.
struct ClientMetrics {
    get_latency: Arc<Histogram>,
    stat_latency: Arc<Histogram>,
    rpc_latency: Arc<Histogram>,
    rpc_retries: Arc<Counter>,
    fabric_bytes_sent: Arc<Gauge>,
    fabric_bytes_received: Arc<Gauge>,
    fabric_msgs_sent: Arc<Gauge>,
    get_many_latency: Arc<Histogram>,
    get_many_batches: Arc<Counter>,
    get_many_entries: Arc<Counter>,
    get_many_fallbacks: Arc<Counter>,
    cache_hits: Arc<Gauge>,
    cache_misses: Arc<Gauge>,
    cache_evictions: Arc<Gauge>,
    cache_resident: Arc<Gauge>,
    cache_shard_count: Arc<Gauge>,
    cache_shard_hot_bytes: Arc<Gauge>,
    cache_shard_spread: Arc<Histogram>,
    bufpool_hits: Arc<Gauge>,
    bufpool_misses: Arc<Gauge>,
    bufpool_returns: Arc<Gauge>,
    bufpool_idle_bytes: Arc<Gauge>,
}

impl ClientMetrics {
    fn resolve(state: &NodeState) -> Self {
        let m = &state.metrics;
        ClientMetrics {
            get_latency: m.histogram("client.get.latency_us"),
            stat_latency: m.histogram("client.stat.latency_us"),
            rpc_latency: m.histogram("fabric.rpc.latency_us"),
            rpc_retries: m.counter("fabric.rpc.retries"),
            fabric_bytes_sent: m.gauge("fabric.bytes_sent"),
            fabric_bytes_received: m.gauge("fabric.bytes_received"),
            fabric_msgs_sent: m.gauge("fabric.msgs_sent"),
            get_many_latency: m.histogram("client.get_many.latency_us"),
            get_many_batches: m.counter("client.get_many.batches"),
            get_many_entries: m.counter("client.get_many.entries"),
            get_many_fallbacks: m.counter("client.get_many.fallbacks"),
            cache_hits: m.gauge("cache.hits"),
            cache_misses: m.gauge("cache.misses"),
            cache_evictions: m.gauge("cache.evictions"),
            cache_resident: m.gauge("cache.resident_bytes"),
            cache_shard_count: m.gauge("cache.shard.count"),
            cache_shard_hot_bytes: m.gauge("cache.shard.hot_bytes"),
            cache_shard_spread: m.histogram("cache.shard.resident_bytes"),
            bufpool_hits: m.gauge("bufpool.take.hits"),
            bufpool_misses: m.gauge("bufpool.take.misses"),
            bufpool_returns: m.gauge("bufpool.put.returns"),
            bufpool_idle_bytes: m.gauge("bufpool.idle.bytes"),
        }
    }
}

/// One entry produced by [`FsClient::fetch_many_raw`]: either already
/// decompressed (a cache or write-store hit) or still compressed (local
/// backend or remote daemon). Finishing — decompression plus cache
/// insertion — is deferred to [`FsClient::finish_read`] /
/// [`FsClient::finish_entry`], which may run on a *different* thread;
/// that is how the prefetch pipeline fans decompression out over its I/O
/// workers instead of serialising it per file.
///
/// A `Ready` entry holds one cache open-count on the caller's behalf:
/// pass it to `finish_read` (which releases it) or balance it with
/// [`FsClient::release`]; dropping it on the floor pins the entry in the
/// cache until it is purged.
pub enum RawEntry {
    /// Decompressed and resident in the cache, open-count held.
    Ready(Arc<Vec<u8>>),
    /// Compressed payload awaiting decompression and cache insertion.
    Packed {
        /// Codec of `bytes`.
        codec: CodecId,
        /// Uncompressed length.
        size: usize,
        /// The compressed bytes.
        bytes: Arc<Vec<u8>>,
        /// Batch request id, stamped into the decompress span (0 when
        /// the batch was untraced).
        request: u64,
    },
}

/// Client-side QoS state for one tenant: the shared policy, the tenant's
/// admission bucket (absent when admission is disabled for it) and the
/// per-tenant instrument handles.
struct QosState {
    policy: Arc<QosPolicy>,
    tenant: TenantId,
    /// Token bucket admitting this tenant's read operations. `None` when
    /// the tenant has no quota or `burst == 0` — admission disabled, the
    /// op is always admitted (but still counted).
    bucket: Option<TokenBucket>,
    admitted: Arc<Counter>,
    throttled: Arc<Counter>,
    latency: Arc<Histogram>,
    /// Latency objective tracker; `None` when the policy sets no
    /// objective for this tenant.
    slo: Option<SloTracker>,
    slo_good: Arc<Counter>,
    slo_bad: Arc<Counter>,
    /// Sliding-window error-budget burn rate ×1000 (gauges are integral;
    /// 1000 = burning exactly at the sustainable rate).
    slo_burn: Arc<Gauge>,
}

impl QosState {
    /// Record one completed read's latency against the tenant histogram
    /// (tail values keep their request id as exemplars) and, when an
    /// objective is configured, classify it good/bad and refresh the
    /// burn-rate gauge.
    fn observe_latency(&self, elapsed_us: u64, request: u64) {
        self.latency.record_with_exemplar(elapsed_us, request);
        if let Some(slo) = &self.slo {
            if slo.observe(elapsed_us) {
                self.slo_good.inc();
            } else {
                self.slo_bad.inc();
            }
            self.slo_burn.set((slo.burn_rate() * 1000.0).round() as u64);
        }
    }
}

/// A POSIX-style handle onto the FanStore namespace for one process (one
/// training I/O thread can clone its own).
pub struct FsClient {
    state: Arc<NodeState>,
    service: RemoteSender,
    fds: Mutex<HashMap<i32, OpenFile>>,
    next_fd: AtomicU64,
    trace: Option<Arc<TraceRecorder>>,
    failover: Option<FailoverConfig>,
    read_through: Option<Arc<dyn Backend>>,
    qos: Option<QosState>,
    metrics: ClientMetrics,
    /// Whether per-op timing is worth taking (metrics enabled; spans
    /// additionally need an attached trace).
    timed: bool,
}

impl FsClient {
    /// Build a client over a node's state and a send handle on the
    /// service channel.
    pub fn new(state: Arc<NodeState>, service: RemoteSender) -> Self {
        let metrics = ClientMetrics::resolve(&state);
        let timed = state.metrics.is_enabled();
        FsClient {
            state,
            service,
            fds: Mutex::new(HashMap::new()),
            next_fd: AtomicU64::new(3),
            trace: None,
            failover: None,
            read_through: None,
            qos: None,
            metrics,
            timed,
        }
    }

    /// Attach an I/O trace recorder; subsequent calls are recorded and
    /// remote operations produce span events.
    pub fn with_trace(mut self, trace: Arc<TraceRecorder>) -> Self {
        self.trace = Some(trace);
        self.timed = true; // spans need timestamps even with metrics off
        self
    }

    /// Attach a failover policy: remote rpcs run under its deadline and
    /// failed GETs retry over the owner's ring replicas.
    pub fn with_failover(mut self, cfg: FailoverConfig) -> Self {
        self.failover = Some(cfg);
        self
    }

    /// Attach a read-through backend (models falling back to the shared
    /// file system): the last resort after every replica failed.
    pub fn with_read_through(mut self, backend: Arc<dyn Backend>) -> Self {
        self.read_through = Some(backend);
        self
    }

    /// Attach a QoS policy and identify this client as `tenant`: read
    /// operations pass token-bucket admission (surfacing
    /// [`FsError::Throttled`] after the policy's backoff retries), carry
    /// the tenant id and an absolute deadline on every rpc envelope, and
    /// record under `qos.tenant.<id>.*`. The tenant's quota is snapshot
    /// into `qos.tenant.<id>.quota.*` gauges.
    pub fn with_qos(mut self, policy: Arc<QosPolicy>, tenant: TenantId) -> Self {
        let m = &self.state.metrics;
        let bucket = policy
            .quota(tenant)
            .filter(|q| q.burst > 0)
            .map(|q| TokenBucket::new(q.rate_per_s, q.burst));
        if let Some(q) = policy.quota(tenant) {
            m.gauge(&format!("qos.tenant.{tenant}.quota.burst")).set(u64::from(q.burst));
            m.gauge(&format!("qos.tenant.{tenant}.quota.weight")).set(u64::from(q.weight.max(1)));
            m.gauge(&format!("qos.tenant.{tenant}.quota.rate_per_s")).set(q.rate_per_s as u64);
        }
        let slo = policy
            .objective(tenant)
            .map(|o| SloTracker::new(o, policy.slo_slot, policy.slo_windows));
        if let Some(o) = policy.objective(tenant) {
            m.gauge(&format!("qos.tenant.{tenant}.slo.latency_us")).set(o.latency_us);
            m.gauge(&format!("qos.tenant.{tenant}.slo.target_milli"))
                .set((o.target * 1000.0).round() as u64);
        }
        self.qos = Some(QosState {
            bucket,
            admitted: m.counter(&format!("qos.tenant.{tenant}.admitted")),
            throttled: m.counter(&format!("qos.tenant.{tenant}.throttled")),
            latency: m.histogram(&format!("qos.tenant.{tenant}.latency_us")),
            slo,
            slo_good: m.counter(&format!("qos.tenant.{tenant}.slo.good")),
            slo_bad: m.counter(&format!("qos.tenant.{tenant}.slo.bad")),
            slo_burn: m.gauge(&format!("qos.tenant.{tenant}.slo.burn_milli")),
            policy,
            tenant,
        });
        self
    }

    /// A sibling client for `tenant` over the same node state, service
    /// channel, trace, failover and read-through configuration — how a
    /// process serving several training jobs gives each its own tenant
    /// identity (and its own admission bucket).
    pub fn fork_tenant(&self, tenant: TenantId) -> FsClient {
        let mut c = FsClient::new(Arc::clone(&self.state), self.service.clone());
        if let Some(t) = &self.trace {
            c = c.with_trace(Arc::clone(t));
        }
        if let Some(f) = &self.failover {
            c = c.with_failover(f.clone());
        }
        if let Some(b) = &self.read_through {
            c = c.with_read_through(Arc::clone(b));
        }
        if let Some(q) = &self.qos {
            c = c.with_qos(Arc::clone(&q.policy), tenant);
        }
        c
    }

    /// The tenant this client's operations are accounted to (0 without a
    /// QoS policy).
    pub fn tenant(&self) -> TenantId {
        self.qos.as_ref().map_or(0, |q| q.tenant)
    }

    /// The attached trace recorder, if any.
    pub fn trace(&self) -> Option<&Arc<TraceRecorder>> {
        self.trace.as_ref()
    }

    /// Token-bucket admission for one read operation. Without a QoS
    /// policy (or for a tenant with no bucket) every op is admitted; with
    /// one, a refused op retries under seeded backoff
    /// (`policy.throttle_retries` times) and then surfaces as
    /// [`FsError::Throttled`].
    fn admit(&self, path: &str) -> Result<(), FsError> {
        let Some(q) = &self.qos else { return Ok(()) };
        let Some(bucket) = &q.bucket else {
            q.admitted.inc();
            return Ok(());
        };
        let retries = q.policy.throttle_retries;
        for attempt in 0..=retries {
            if bucket.try_admit(now_us()) {
                q.admitted.inc();
                return Ok(());
            }
            if attempt < retries {
                std::thread::sleep(seeded_backoff(
                    q.policy.backoff_base,
                    q.policy.backoff_max,
                    q.policy.seed,
                    path,
                    attempt + 1,
                ));
            }
        }
        q.throttled.inc();
        self.state.stats.throttled_ops.inc();
        Err(FsError::Throttled(format!("tenant {}: {path}", q.tenant)))
    }

    /// The absolute deadline (µs on the shared monotonic clock) to stamp
    /// on this operation's rpcs: the tenant's `op_deadline` when set, else
    /// the failover `rpc_timeout` when the policy derives deadlines from
    /// it. 0 = no deadline (also without a QoS policy — the pre-QoS
    /// envelope, so the daemon never sheds legacy traffic).
    fn op_deadline_us(&self) -> u64 {
        let Some(q) = &self.qos else { return 0 };
        let d = match q.policy.quota(q.tenant).and_then(|t| t.op_deadline) {
            Some(d) => d,
            None => {
                if !q.policy.deadline_from_timeout {
                    return 0;
                }
                match &self.failover {
                    Some(c) => c.rpc_timeout,
                    None => return 0,
                }
            }
        };
        now_us().saturating_add(d.as_micros() as u64).max(1)
    }

    /// The rpc envelope meta for one request leg.
    fn rpc_meta(&self, request: u64, deadline_us: u64) -> RpcMeta {
        RpcMeta { request_id: request, tenant: self.tenant(), deadline_us }
    }

    #[inline]
    fn record(&self, op: Op, path: &str, bytes: u64) {
        if let Some(t) = &self.trace {
            t.record(op, path, bytes);
        }
    }

    /// Record one request span into the trace (no-op without a trace).
    #[inline]
    fn span(&self, request: u64, stage: &str, start_us: u64) {
        if let Some(t) = &self.trace {
            t.record_span(SpanEvent {
                request,
                rank: self.state.rank as u32,
                stage: stage.to_string(),
                start_us,
                dur_us: now_us().saturating_sub(start_us),
            });
        }
    }

    /// Refresh the fabric traffic gauges from the channel's counters so a
    /// snapshot taken mid-run reflects current totals.
    fn sync_fabric_gauges(&self) {
        if !self.state.metrics.is_enabled() {
            return;
        }
        let stats = self.service.stats();
        self.metrics.fabric_bytes_sent.set(stats.bytes_sent.load(Ordering::Relaxed));
        self.metrics.fabric_bytes_received.set(stats.bytes_received.load(Ordering::Relaxed));
        self.metrics.fabric_msgs_sent.set(stats.msgs_sent.load(Ordering::Relaxed));
    }

    /// The node rank this client runs on.
    pub fn rank(&self) -> usize {
        self.state.rank
    }

    /// Number of nodes in the store.
    pub fn nodes(&self) -> usize {
        self.state.size
    }

    /// Shared node state (for inspecting counters in tests/benches).
    pub fn state(&self) -> &Arc<NodeState> {
        &self.state
    }

    fn alloc_fd(&self) -> i32 {
        self.next_fd.fetch_add(1, Ordering::Relaxed) as i32
    }

    /// `open(path, O_RDONLY)`: locate the file (cache → local backend →
    /// remote daemon, Figure 2), decompress if needed, and return a file
    /// descriptor positioned at offset 0.
    pub fn open(&self, path: &str) -> Result<i32, FsError> {
        self.record(Op::Open, path, 0);
        let data = self.fetch(path)?;
        let fd = self.alloc_fd();
        self.fds.lock().insert(fd, OpenFile::Read { path: path.to_string(), data, pos: 0 });
        Ok(fd)
    }

    /// Fetch decompressed contents, populating the cache (shared by
    /// `open` and `read_whole`). When timing is on, the whole operation
    /// is one request: it gets a fresh [`NodeState::next_request_id`],
    /// its latency lands in `client.get.latency_us`, and a `client.get`
    /// span (plus per-stage children) is recorded.
    fn fetch(&self, path: &str) -> Result<Arc<Vec<u8>>, FsError> {
        if !self.timed {
            self.admit(path)?;
            let deadline = self.op_deadline_us();
            return self.fetch_inner(path, 0, deadline);
        }
        // The request id is minted before admission so backoff waits are
        // attributable: with QoS attached the admit leg becomes a
        // `client.admit` child span of this request.
        let request = self.state.next_request_id();
        let start = now_us();
        let admitted = self.admit(path);
        if self.qos.is_some() {
            self.span(request, "client.admit", start);
        }
        // A throttled op never ran: no get latency, no root span.
        admitted?;
        let deadline = self.op_deadline_us();
        let out = self.fetch_inner(path, request, deadline);
        let elapsed = now_us().saturating_sub(start);
        self.metrics.get_latency.record_with_exemplar(elapsed, request);
        if let Some(q) = &self.qos {
            q.observe_latency(elapsed, request);
        }
        self.span(request, "client.get", start);
        out
    }

    fn fetch_inner(
        &self,
        path: &str,
        request: u64,
        deadline_us: u64,
    ) -> Result<Arc<Vec<u8>>, FsError> {
        if let Some(local) = self.state.open_local(path)? {
            return Ok(local);
        }
        // Remote: find the owner from the replicated metadata. No
        // metadata entry means the path genuinely does not exist.
        let owner = self.state.owner_of(path).ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let remote_err = if owner == self.state.rank || owner >= self.state.size {
            // Metadata says the bytes should be here (or nowhere valid)
            // but the local backend came up empty.
            FsError::NotFound(path.to_string())
        } else {
            match self.fetch_remote(path, owner, request, deadline_us) {
                Ok(plain) => {
                    self.sync_fabric_gauges();
                    return Ok(self.state.cache.insert(path, Arc::new(plain)));
                }
                Err(e) => {
                    self.sync_fabric_gauges();
                    e
                }
            }
        };
        // Last resort: read through to the backing store — the paper's
        // shared file system, which always holds every partition.
        if let Some(backend) = &self.read_through {
            if let Some(obj) = backend.get(path) {
                let plain = self.state.decompress_timed(
                    obj.codec,
                    &obj.data,
                    obj.stat.size as usize,
                    path,
                )?;
                self.state.stats.read_through_reads.inc();
                self.state.stats.degraded_reads.inc();
                self.record(Op::Degraded, path, 0);
                return Ok(self.state.cache.insert(path, Arc::new(plain)));
            }
        }
        Err(remote_err)
    }

    /// One GET attempt against `replica`: rpc (optionally under the
    /// failover deadline), CRC-verified decode, decompress. The rpc leg
    /// lands in `fabric.rpc.latency_us` / a `fabric.rpc` span; the
    /// decompress leg in the codec histograms / a `client.decompress`
    /// span.
    fn try_get(
        &self,
        path: &str,
        replica: usize,
        timeout: Option<Duration>,
        request: u64,
        deadline_us: u64,
    ) -> Result<Vec<u8>, FsError> {
        let payload = path.as_bytes().to_vec();
        let rpc_start = if self.timed { now_us() } else { 0 };
        let meta = self.rpc_meta(request, deadline_us);
        let reply =
            self.service.rpc_with_meta(replica, tags::GET, payload, timeout, meta).map_err(|e| {
                match e {
                    // A dead peer surfaces as a dropped conduit (blackholed
                    // request) or an elapsed deadline; both mean "unreachable".
                    CommError::Timeout | CommError::Disconnected => {
                        FsError::Timeout(format!("GET {path} from rank {replica}"))
                    }
                    other => FsError::Comm(other.to_string()),
                }
            });
        if self.timed {
            self.metrics
                .rpc_latency
                .record_with_exemplar(now_us().saturating_sub(rpc_start), request);
            self.span(request, "fabric.rpc", rpc_start);
        }
        let reply = reply?;
        let decoded = decode_get_reply(&reply);
        if let Err(FsError::Shed(_)) = &decoded {
            // The daemon answered SHED: deadline unmeetable or queue
            // full. Retryable — the caller walks replicas / read-through.
            self.state.stats.shed_replies.inc();
        }
        let (codec, stat, compressed) = decoded?;
        self.state.stats.remote_opens.inc();
        self.state.stats.remote_bytes.add(compressed.len() as u64);
        let dec_start = if self.timed { now_us() } else { 0 };
        let plain = self.state.decompress_timed(codec, &compressed, stat.size as usize, path)?;
        if self.timed {
            self.span(request, "client.decompress", dec_start);
        }
        Ok(plain)
    }

    /// Remote fetch with replica failover. Without a [`FailoverConfig`]
    /// this is a single rpc to the owner (the pre-recovery behaviour);
    /// with one, failed attempts walk the owner's ring replicas under
    /// backoff, counting every recovery action in the node stats. Two
    /// budgets bound the walk: `cfg.retry_budget` caps total retries per
    /// op, and `deadline_us` (when nonzero) stops the walk — and clamps
    /// each attempt's timeout — once the operation's deadline passes, so
    /// a degraded batch cannot spend a fresh full timeout per entry.
    fn fetch_remote(
        &self,
        path: &str,
        owner: usize,
        request: u64,
        deadline_us: u64,
    ) -> Result<Vec<u8>, FsError> {
        if deadline_us != 0 && now_us() >= deadline_us {
            // Expired before the first send: the daemon would shed it
            // anyway; skip the round trip (read-through still applies).
            return Err(FsError::Shed(format!("{path}: deadline exhausted before send")));
        }
        let Some(cfg) = &self.failover else {
            return self.try_get(path, owner, None, request, deadline_us);
        };
        let replicas: Vec<usize> = replicas_of(owner, self.state.size, cfg.replica_rounds)
            .into_iter()
            .filter(|&r| r != self.state.rank)
            .collect();
        let mut attempt = 0u32;
        let mut last = FsError::Degraded(format!("{path}: no reachable replica"));
        for &replica in &replicas {
            for _ in 0..cfg.attempts_per_replica.max(1) {
                if attempt > 0 {
                    if cfg.retry_budget > 0 && attempt > cfg.retry_budget {
                        self.state.stats.retry_exhausted.inc();
                        return Err(last);
                    }
                    std::thread::sleep(backoff_delay(cfg, path, attempt));
                    self.metrics.rpc_retries.inc();
                }
                attempt += 1;
                // Charge the attempt against the op deadline: never wait
                // past it, and stop retrying once it has passed.
                let mut timeout = cfg.rpc_timeout;
                if deadline_us != 0 {
                    let rem = deadline_us.saturating_sub(now_us());
                    if rem == 0 {
                        return Err(FsError::Shed(format!("{path}: deadline exhausted")));
                    }
                    timeout = timeout.min(Duration::from_micros(rem));
                }
                match self.try_get(path, replica, Some(timeout), request, deadline_us) {
                    Ok(plain) => {
                        if attempt > 1 {
                            // The read needed recovery: a retry or a
                            // replica other than the primary served it.
                            self.state.stats.degraded_reads.inc();
                            self.record(Op::Degraded, path, 0);
                        }
                        return Ok(plain);
                    }
                    Err(e) => {
                        match &e {
                            FsError::Timeout(_) => {
                                self.state.stats.rpc_timeouts.inc();
                            }
                            FsError::Corrupt(_) => {
                                self.state.stats.crc_failures.inc();
                            }
                            // NotFound/Comm from a replica is anomalous
                            // (metadata says the file exists): retryable.
                            _ => {}
                        }
                        last = e;
                    }
                }
            }
        }
        Err(last)
    }

    /// Batched fetch (the `GetMany` data path): resolve every path in
    /// `paths`, coalescing remote entries into one GET_MANY RPC per
    /// destination rank (chunked at [`MAX_BATCH`]). Cache and write-store
    /// hits come back `Ready`; local-backend and remote entries come back
    /// `Packed` so the caller can fan decompression out over worker
    /// threads. Results align with `paths`.
    ///
    /// One request id covers the whole batch: the `client.get_many` span
    /// is its root, each per-rank RPC records a `fabric.rpc` child, and
    /// every deferred decompression later records a `client.decompress`
    /// child — so a trace dump joins the batch back together.
    ///
    /// Per-entry failure isolation: a missing, corrupted or unreachable
    /// entry does not fail the batch. Each unresolved entry falls back to
    /// the single-GET path — replica failover, backoff and read-through
    /// included — exactly as [`FsClient::read_whole`] would.
    pub fn fetch_many_raw(&self, paths: &[String]) -> Vec<Result<RawEntry, FsError>> {
        let n = paths.len();
        if n == 0 {
            return Vec::new();
        }
        let timed = self.timed;
        let request = if timed { self.state.next_request_id() } else { 0 };
        let start = if timed { now_us() } else { 0 };
        // Admission: one token per batch, timed under the batch request
        // id (a `client.admit` child span when QoS is attached). A
        // refused batch fails whole — every entry carries the Throttled
        // error, and no get_many latency or root span is recorded.
        let admitted = self.admit(&paths[0]);
        if timed && self.qos.is_some() {
            self.span(request, "client.admit", start);
        }
        if let Err(e) = admitted {
            return paths.iter().map(|_| Err(e.clone())).collect();
        }
        // One deadline covers the whole batch: the GET_MANY rpcs and every
        // per-entry fallback fetch are charged against it, so a degraded
        // batch is bounded by one budget instead of one per entry.
        let deadline_us = self.op_deadline_us();
        let mut out: Vec<Option<Result<RawEntry, FsError>>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        // Local pass: cache / write-store hits resolve immediately; local
        // compressed objects stay packed (workers decompress them); the
        // rest group by owner rank. BTreeMap keeps the rank order
        // deterministic for seeded runs.
        let mut by_rank: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, path) in paths.iter().enumerate() {
            self.record(Op::Open, path, 0);
            if let Some(hit) = self.state.cache.open(path) {
                self.state.stats.local_opens.inc();
                out[i] = Some(Ok(RawEntry::Ready(hit)));
                continue;
            }
            if let Some(w) = self.state.writes.read().get(path).cloned() {
                self.state.stats.local_opens.inc();
                out[i] = Some(Ok(RawEntry::Ready(self.state.cache.insert(path, w))));
                continue;
            }
            if let Some(obj) = self.state.local_packed(path) {
                self.state.stats.local_opens.inc();
                out[i] = Some(Ok(RawEntry::Packed {
                    codec: obj.codec,
                    size: obj.stat.size as usize,
                    bytes: obj.data,
                    request,
                }));
                continue;
            }
            match self.state.owner_of(path) {
                Some(owner) if owner != self.state.rank && owner < self.state.size => {
                    by_rank.entry(owner).or_default().push(i);
                }
                // Missing metadata or a local owner with no local bytes:
                // the fallback pass reports NotFound / tries read-through.
                _ => {}
            }
        }
        // Remote pass: one GET_MANY per destination rank. Entry errors
        // (per-entry CRC failure, NOT_FOUND) and batch-level errors (rpc
        // timeout, damaged outer frame) both leave slots unresolved for
        // the fallback pass.
        let timeout = self.failover.as_ref().map(|c| c.rpc_timeout);
        for (&rank, idxs) in &by_rank {
            for chunk in idxs.chunks(MAX_BATCH) {
                let chunk_paths: Vec<&str> = chunk.iter().map(|&i| paths[i].as_str()).collect();
                let payload = encode_get_many_request(&chunk_paths);
                let rpc_start = if timed { now_us() } else { 0 };
                let meta = self.rpc_meta(request, deadline_us);
                let reply =
                    self.service.rpc_with_meta(rank, tags::GET_MANY, payload, timeout, meta);
                if timed {
                    self.metrics
                        .rpc_latency
                        .record_with_exemplar(now_us().saturating_sub(rpc_start), request);
                    self.span(request, "fabric.rpc", rpc_start);
                }
                match reply {
                    Ok(reply) => {
                        match decode_get_many_reply(&reply, chunk.len()) {
                            Ok(entries) => {
                                for (&slot, entry) in chunk.iter().zip(entries) {
                                    match entry {
                                        Ok((codec, stat, bytes)) => {
                                            self.state.stats.remote_opens.inc();
                                            self.state.stats.remote_bytes.add(bytes.len() as u64);
                                            out[slot] = Some(Ok(RawEntry::Packed {
                                                codec,
                                                size: stat.size as usize,
                                                bytes: Arc::new(bytes),
                                                request,
                                            }));
                                        }
                                        Err(FsError::Corrupt(_)) => {
                                            self.state.stats.crc_failures.inc();
                                        }
                                        Err(_) => {}
                                    }
                                }
                            }
                            Err(FsError::Shed(_)) => {
                                // The daemon shed the whole batch rpc; all
                                // its slots go to the fallback pass.
                                self.state.stats.shed_replies.inc();
                            }
                            Err(_) => {}
                        }
                    }
                    Err(CommError::Timeout | CommError::Disconnected) => {
                        self.state.stats.rpc_timeouts.inc();
                    }
                    Err(_) => {}
                }
            }
        }
        // Fallback pass: per-entry replica failover through the
        // single-GET machinery, under the same batch request id and —
        // crucially — the same batch deadline (a fresh full timeout per
        // degraded entry would let a MAX_BATCH batch take 128× budget).
        for (i, slot) in out.iter_mut().enumerate() {
            if slot.is_none() {
                self.metrics.get_many_fallbacks.inc();
                *slot =
                    Some(self.fetch_inner(&paths[i], request, deadline_us).map(RawEntry::Ready));
            }
        }
        if timed {
            let elapsed = now_us().saturating_sub(start);
            self.metrics.get_many_latency.record_with_exemplar(elapsed, request);
            if let Some(q) = &self.qos {
                q.observe_latency(elapsed, request);
            }
            self.span(request, "client.get_many", start);
        }
        self.metrics.get_many_batches.inc();
        self.metrics.get_many_entries.add(n as u64);
        self.sync_fabric_gauges();
        self.sync_cache_gauges();
        out.into_iter().map(|r| r.expect("every entry resolved")).collect()
    }

    /// Finish one [`RawEntry`]: decompress a `Packed` entry (recording
    /// the `client.decompress` span against its batch request) and insert
    /// it into the cache. The returned buffer holds one cache open-count;
    /// balance it with [`FsClient::release`].
    pub fn finish_entry(&self, path: &str, entry: RawEntry) -> Result<Arc<Vec<u8>>, FsError> {
        match entry {
            RawEntry::Ready(data) => Ok(data),
            RawEntry::Packed { codec, size, bytes, request } => {
                let dec_start = if self.timed { now_us() } else { 0 };
                let plain = self.state.decompress_timed(codec, &bytes, size, path)?;
                if self.timed && request != 0 {
                    self.span(request, "client.decompress", dec_start);
                }
                Ok(self.state.cache.insert(path, Arc::new(plain)))
            }
        }
    }

    /// Finish a [`RawEntry`] into owned bytes and release its cache
    /// reference (the batched equivalent of [`FsClient::read_whole`]'s
    /// read-to-end + close).
    pub fn finish_read(&self, path: &str, entry: RawEntry) -> Result<Vec<u8>, FsError> {
        let data = self.finish_entry(path, entry)?;
        self.record(Op::Read, path, data.len() as u64);
        self.state.cache.close(path);
        self.record(Op::Close, path, 0);
        // Under the eager-release cache policy the close above dropped the
        // cache's reference, so ours is the last one and the buffer moves
        // out with no copy. When the entry stays cached (or another reader
        // holds it) the copy is unavoidable — but it is sourced from the
        // scratch pool, so a steady-state loop that recycles its outputs
        // still performs no allocation.
        match Arc::try_unwrap(data) {
            Ok(out) => Ok(out),
            Err(shared) => {
                let mut out = self.state.pool.take(shared.len());
                out.extend_from_slice(&shared);
                Ok(out)
            }
        }
    }

    /// Hand a buffer obtained from [`FsClient::finish_read`] /
    /// [`FsClient::read_many`] back to the node's scratch pool once its
    /// contents have been consumed. Optional — a dropped buffer is merely
    /// an allocation on the next decode — but a loop that recycles runs
    /// allocation-free at steady state (see the pool-stats test).
    pub fn recycle(&self, buf: Vec<u8>) {
        self.state.pool.put(buf);
    }

    /// Release the cache reference held by a finished entry (pairs with
    /// [`FsClient::finish_entry`]).
    pub fn release(&self, path: &str) {
        self.state.cache.close(path);
    }

    /// Batched convenience read: [`FsClient::fetch_many_raw`] plus
    /// in-place finishing. Results align with `paths`; a failed entry
    /// carries its own error while the rest of the batch still delivers.
    pub fn read_many(&self, paths: &[String]) -> Vec<Result<Vec<u8>, FsError>> {
        let raw = self.fetch_many_raw(paths);
        paths.iter().zip(raw).map(|(p, r)| r.and_then(|e| self.finish_read(p, e))).collect()
    }

    /// Refresh the cache gauges (`cache.*`, `cache.shard.*`) from the
    /// sharded cache's merged and per-shard counters.
    fn sync_cache_gauges(&self) {
        if !self.state.metrics.is_enabled() {
            return;
        }
        let merged = self.state.cache.stats();
        self.metrics.cache_hits.set(merged.hits.load(Ordering::Relaxed));
        self.metrics.cache_misses.set(merged.misses.load(Ordering::Relaxed));
        self.metrics.cache_evictions.set(merged.evictions.load(Ordering::Relaxed));
        let snaps = self.state.cache.shard_snapshots();
        self.metrics.cache_resident.set(snaps.iter().map(|s| s.resident_bytes).sum());
        self.metrics.cache_shard_count.set(snaps.len() as u64);
        let hot = snaps.iter().map(|s| s.resident_bytes).max().unwrap_or(0);
        self.metrics.cache_shard_hot_bytes.set(hot);
        self.metrics.cache_shard_spread.record(hot);
        let pool = self.state.pool.stats();
        self.metrics.bufpool_hits.set(pool.hits);
        self.metrics.bufpool_misses.set(pool.misses);
        self.metrics.bufpool_returns.set(pool.returns);
        self.metrics.bufpool_idle_bytes.set(pool.idle_bytes as u64);
    }

    /// `open(path, O_WRONLY|O_CREAT)`: start a write-once output file.
    pub fn create(&self, path: &str) -> Result<i32, FsError> {
        if self.state.meta.read().get(path).is_some() || self.state.writes.read().contains_key(path)
        {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let fd = self.alloc_fd();
        self.fds.lock().insert(fd, OpenFile::Write { path: path.to_string(), buf: Vec::new() });
        Ok(fd)
    }

    /// `read(fd, buf)`: copy up to `buf.len()` bytes from the current
    /// position; returns bytes read (0 at EOF).
    pub fn read(&self, fd: i32, buf: &mut [u8]) -> Result<usize, FsError> {
        let mut fds = self.fds.lock();
        match fds.get_mut(&fd) {
            Some(OpenFile::Read { data, pos, path }) => {
                // The offset may sit past EOF (lseek allows it); clamp the
                // slice start so such reads return 0 instead of panicking.
                let start = (*pos).min(data.len());
                let n = buf.len().min(data.len() - start);
                buf[..n].copy_from_slice(&data[start..start + n]);
                *pos += n;
                if let Some(t) = &self.trace {
                    t.record(Op::Read, path, n as u64);
                }
                Ok(n)
            }
            Some(OpenFile::Write { path, .. }) => Err(FsError::ReadOnly(path.clone())),
            None => Err(FsError::BadFd(fd)),
        }
    }

    /// `write(fd, buf)`: append to an output file's write cache.
    pub fn write(&self, fd: i32, buf: &[u8]) -> Result<usize, FsError> {
        let mut fds = self.fds.lock();
        match fds.get_mut(&fd) {
            Some(OpenFile::Write { buf: wbuf, path }) => {
                if let Some(t) = &self.trace {
                    t.record(Op::Write, path, buf.len() as u64);
                }
                wbuf.extend_from_slice(buf);
                Ok(buf.len())
            }
            Some(OpenFile::Read { path, .. }) => Err(FsError::ReadOnly(path.clone())),
            None => Err(FsError::BadFd(fd)),
        }
    }

    /// `lseek(fd, offset, whence)`: reposition a read descriptor; returns
    /// the new offset.
    pub fn lseek(&self, fd: i32, offset: i64, whence: Whence) -> Result<u64, FsError> {
        self.record(Op::Seek, "", 0);
        let mut fds = self.fds.lock();
        match fds.get_mut(&fd) {
            Some(OpenFile::Read { data, pos, .. }) => {
                let base = match whence {
                    Whence::Set => 0i64,
                    Whence::Cur => *pos as i64,
                    Whence::End => data.len() as i64,
                };
                let target = base + offset;
                if target < 0 {
                    return Err(FsError::BadFd(fd));
                }
                *pos = target as usize; // seeking past EOF is legal
                Ok(*pos as u64)
            }
            Some(OpenFile::Write { path, .. }) => Err(FsError::ReadOnly(path.clone())),
            None => Err(FsError::BadFd(fd)),
        }
    }

    /// `close(fd)`: for reads, releases the cache reference; for writes,
    /// finalises the file (immutable from now on) and forwards its
    /// metadata to the owner rank (§V-D).
    pub fn close(&self, fd: i32) -> Result<(), FsError> {
        self.record(Op::Close, "", 0);
        let entry = self.fds.lock().remove(&fd).ok_or(FsError::BadFd(fd))?;
        match entry {
            OpenFile::Read { path, data, .. } => {
                // Drop the fd's reference *before* telling the cache: under
                // the eager-release policy the cache then holds the last
                // one and can recycle the buffer into the scratch pool.
                drop(data);
                self.state.cache.close(&path);
                Ok(())
            }
            OpenFile::Write { path, buf } => {
                // The finalisation (durable local landing + metadata
                // forward) is the write's latency-bearing leg: one
                // `client.put` span when timed.
                let request = if self.timed { self.state.next_request_id() } else { 0 };
                let start = if self.timed { now_us() } else { 0 };
                let out = self.close_write(&path, buf);
                if self.timed {
                    self.span(request, "client.put", start);
                }
                out
            }
        }
    }

    /// Finalise one written file: land it in the node's write store (and
    /// WAL, when attached) and forward its metadata to the owner rank.
    fn close_write(&self, path: &str, buf: Vec<u8>) -> Result<(), FsError> {
        let entry = self.state.finalize_write(path, buf)?;
        let owner = meta_owner(path, self.state.size);
        if owner != self.state.rank {
            let payload = encode_single(path, &entry);
            let sent = match &self.failover {
                Some(cfg) => {
                    self.service.rpc_timeout(owner, tags::PUT_META, payload, cfg.rpc_timeout)
                }
                None => self.service.rpc(owner, tags::PUT_META, payload),
            };
            if let Err(e) = sent {
                if self.failover.is_none() {
                    return Err(FsError::Comm(e.to_string()));
                }
                // Degraded mode: the metadata owner is unreachable. The
                // file stays readable from this node; count the lost
                // forward instead of killing the training run.
                self.state.stats.rpc_timeouts.inc();
                self.state.stats.meta_forward_failures.inc();
                self.record(Op::Degraded, path, 0);
            }
        }
        Ok(())
    }

    /// `stat(path)`: answered from the replicated local metadata; for
    /// output files written elsewhere, falls back to the metadata owner
    /// rank.
    pub fn stat(&self, path: &str) -> Result<FileStat, FsError> {
        if !self.timed {
            return self.stat_inner(path);
        }
        let start = now_us();
        let out = self.stat_inner(path);
        self.metrics.stat_latency.record(now_us().saturating_sub(start));
        out
    }

    fn stat_inner(&self, path: &str) -> Result<FileStat, FsError> {
        self.record(Op::Stat, path, 0);
        if let Some(s) = self.state.meta.read().stat(path) {
            return Ok(s);
        }
        let owner = meta_owner(path, self.state.size);
        if owner != self.state.rank {
            let reply = match &self.failover {
                Some(cfg) => self.service.rpc_timeout(
                    owner,
                    tags::GET_META,
                    path.as_bytes().to_vec(),
                    cfg.rpc_timeout,
                ),
                None => self.service.rpc(owner, tags::GET_META, path.as_bytes().to_vec()),
            };
            match reply {
                Ok(reply) => {
                    if reply.first() == Some(&crate::daemon::status::OK) {
                        self.state.merge_meta(&reply[1..])?;
                        if let Some(s) = self.state.meta.read().stat(path) {
                            return Ok(s);
                        }
                    }
                }
                Err(e) => {
                    if self.failover.is_none() {
                        return Err(FsError::Comm(e.to_string()));
                    }
                    // Degraded metadata view: the owner is unreachable,
                    // so the path is simply not visible from here.
                    self.state.stats.rpc_timeouts.inc();
                }
            }
        }
        Err(FsError::NotFound(path.to_string()))
    }

    /// `opendir(path)`: snapshot of the directory entries.
    pub fn opendir(&self, path: &str) -> Result<DirStream, FsError> {
        self.record(Op::Readdir, path, 0);
        self.state
            .meta
            .read()
            .readdir(path)
            .map(|entries| DirStream { entries, pos: 0 })
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    /// `closedir(stream)`: release a directory stream (drop suffices; the
    /// method exists to mirror Listing 1's interface).
    pub fn closedir(&self, _stream: DirStream) {}

    /// Convenience: read an entire file (open + read-to-end + close).
    pub fn read_whole(&self, path: &str) -> Result<Vec<u8>, FsError> {
        self.record(Op::Open, path, 0);
        let data = self.fetch(path)?;
        self.record(Op::Read, path, data.len() as u64);
        self.state.cache.close(path);
        self.record(Op::Close, path, 0);
        // Same move-or-pooled-copy dance as `finish_read`: eager-release
        // caches hand the buffer over with no copy at all.
        match Arc::try_unwrap(data) {
            Ok(out) => Ok(out),
            Err(shared) => {
                let mut out = self.state.pool.take(shared.len());
                out.extend_from_slice(&shared);
                Ok(out)
            }
        }
    }

    /// Convenience: write an entire output file (create + write + close).
    pub fn write_whole(&self, path: &str, data: &[u8]) -> Result<(), FsError> {
        let fd = self.create(path)?;
        self.write(fd, data)?;
        self.close(fd)
    }

    /// Read bytes `[start, end)` of `path` without materialising the
    /// whole file. For range-chunked objects only the covering chunks
    /// move: cache-resident chunks are served in place, locally-owned
    /// chunks decode from the partition, and remote chunks travel in one
    /// v2 GET_MANY entry (replica failover and read-through included).
    /// Fetched chunks land in the cache as partial residency, so
    /// overlapping ranges hit without refetching. Objects packed whole
    /// fall back to a full fetch plus slice — correct, just not cheaper.
    ///
    /// `[start, end)` must be non-empty and lie inside the file;
    /// anything else is [`FsError::BadRange`] (EINVAL), never a panic.
    pub fn read_range(&self, path: &str, start: u64, end: u64) -> Result<Vec<u8>, FsError> {
        if !self.timed {
            return self.read_range_inner(path, start, end, 0);
        }
        let request = self.state.next_request_id();
        let t0 = now_us();
        let out = self.read_range_inner(path, start, end, request);
        self.span(request, "client.range", t0);
        out
    }

    fn read_range_inner(
        &self,
        path: &str,
        start: u64,
        end: u64,
        request: u64,
    ) -> Result<Vec<u8>, FsError> {
        let stat = self.stat(path)?;
        if start >= end || end > stat.size {
            return Err(FsError::BadRange(format!("{path}: [{start}, {end}) of {}", stat.size)));
        }
        self.record(Op::Read, path, end - start);
        // 1. Cache: full entries slice in place, partial entries serve the
        // range when every covering chunk is resident.
        if let Some(bytes) = self.state.cache.open_range(path, start, end) {
            return Ok(bytes);
        }
        // 2. Locally-owned chunked object: decode only the covering
        // chunks from the partition.
        if let Some(pieces) = self.state.read_local_chunks(path, start, end)? {
            for c in &pieces.chunks {
                self.state.cache.insert_chunk(
                    path,
                    pieces.chunk_size,
                    pieces.total_len,
                    c.index,
                    c.data.clone(),
                );
            }
            return self.assemble_span(&pieces, start, end, request);
        }
        // 3. Remote owner. Non-chunked objects (local or remote) fall
        // through to a whole-file fetch and slice below.
        let owner = self.state.owner_of(path).ok_or_else(|| FsError::NotFound(path.to_string()))?;
        if owner != self.state.rank
            && owner < self.state.size
            && self.state.local_packed(path).is_none()
        {
            let deadline = self.op_deadline_us();
            match self.range_remote(path, start, end, owner, request, deadline) {
                Ok(bytes) => {
                    self.sync_fabric_gauges();
                    return Ok(bytes);
                }
                // The daemon judged the range invalid — replicas would
                // say the same, and read-through can't fix EINVAL.
                Err(e @ FsError::BadRange(_)) => return Err(e),
                Err(_) => self.sync_fabric_gauges(),
            }
            // Every replica failed: degrade to the whole-file path, which
            // carries its own read-through fallback.
        }
        // 4. Whole-file fallback: fetch (cache-populating), slice.
        let data = self.fetch(path)?;
        let out = slice_range(&data, start, end, path)?;
        self.state.cache.close(path);
        Ok(out)
    }

    /// Assemble `[start, end)` from decoded range pieces under a
    /// `client.assemble` span.
    fn assemble_span(
        &self,
        pieces: &crate::node::RangePieces,
        start: u64,
        end: u64,
        request: u64,
    ) -> Result<Vec<u8>, FsError> {
        let t = if self.timed { now_us() } else { 0 };
        let out = pieces.assemble(start, end);
        if self.timed {
            self.span(request, "client.assemble", t);
        }
        out
    }

    /// One ranged GET_MANY attempt against `replica`: rpc, outer-CRC
    /// decode, per-chunk at-rest CRC + decompress. A chunk whose at-rest
    /// CRC fails poisons only this attempt — the caller walks the replica
    /// ring, where an undamaged copy may survive.
    #[allow(clippy::too_many_arguments)]
    fn try_range(
        &self,
        path: &str,
        start: u64,
        end: u64,
        replica: usize,
        timeout: Option<Duration>,
        request: u64,
        deadline_us: u64,
    ) -> Result<Vec<u8>, FsError> {
        let specs = [GetManySpec::range(path, start, end)];
        let payload = encode_get_many_request_v2(&specs);
        let rpc_start = if self.timed { now_us() } else { 0 };
        let meta = self.rpc_meta(request, deadline_us);
        let reply = self
            .service
            .rpc_with_meta(replica, tags::GET_MANY, payload, timeout, meta)
            .map_err(|e| match e {
                CommError::Timeout | CommError::Disconnected => {
                    FsError::Timeout(format!("GET_MANY(range) {path} from rank {replica}"))
                }
                other => FsError::Comm(other.to_string()),
            });
        if self.timed {
            self.metrics
                .rpc_latency
                .record_with_exemplar(now_us().saturating_sub(rpc_start), request);
            self.span(request, "fabric.rpc", rpc_start);
        }
        let reply = reply?;
        let decoded = decode_get_many_reply_v2(&reply, 1);
        if let Err(FsError::Shed(_)) = &decoded {
            self.state.stats.shed_replies.inc();
        }
        let item = decoded?.into_iter().next().expect("one entry")?;
        self.state.stats.remote_opens.inc();
        match item {
            GetManyItem::Partial(p) => {
                let mut chunks = Vec::with_capacity(p.chunks.len());
                for c in &p.chunks {
                    self.state.stats.remote_bytes.add(c.stored.len() as u64);
                    let raw = Arc::new(c.decode(p.inner_codec)?);
                    self.state.cache.insert_chunk(
                        path,
                        p.chunk_size,
                        p.raw_len,
                        c.index,
                        raw.clone(),
                    );
                    chunks.push(crate::node::RangeChunk {
                        index: c.index,
                        offset: c.offset,
                        data: raw,
                    });
                }
                let pieces = crate::node::RangePieces {
                    chunk_size: p.chunk_size,
                    total_len: p.raw_len,
                    chunks,
                };
                self.assemble_span(&pieces, start, end, request)
            }
            GetManyItem::Whole(codec, stat, data) => {
                // The serving node holds a whole-object copy: decode it
                // all, cache it all, slice the window.
                self.state.stats.remote_bytes.add(data.len() as u64);
                let plain = self.state.decompress_timed(codec, &data, stat.size as usize, path)?;
                let shared = self.state.cache.insert(path, Arc::new(plain));
                let out = slice_range(&shared, start, end, path);
                self.state.cache.close(path);
                out
            }
        }
    }

    /// Remote ranged fetch with the same replica-failover shape as
    /// [`FsClient::fetch_remote`]: walk the owner's ring replicas under
    /// backoff, bounded by the retry budget and the op deadline.
    fn range_remote(
        &self,
        path: &str,
        start: u64,
        end: u64,
        owner: usize,
        request: u64,
        deadline_us: u64,
    ) -> Result<Vec<u8>, FsError> {
        if deadline_us != 0 && now_us() >= deadline_us {
            return Err(FsError::Shed(format!("{path}: deadline exhausted before send")));
        }
        let Some(cfg) = &self.failover else {
            return self.try_range(path, start, end, owner, None, request, deadline_us);
        };
        let replicas: Vec<usize> = replicas_of(owner, self.state.size, cfg.replica_rounds)
            .into_iter()
            .filter(|&r| r != self.state.rank)
            .collect();
        let mut attempt = 0u32;
        let mut last = FsError::Degraded(format!("{path}: no reachable replica"));
        for &replica in &replicas {
            for _ in 0..cfg.attempts_per_replica.max(1) {
                if attempt > 0 {
                    if cfg.retry_budget > 0 && attempt > cfg.retry_budget {
                        self.state.stats.retry_exhausted.inc();
                        return Err(last);
                    }
                    std::thread::sleep(backoff_delay(cfg, path, attempt));
                    self.metrics.rpc_retries.inc();
                }
                attempt += 1;
                let mut timeout = cfg.rpc_timeout;
                if deadline_us != 0 {
                    let rem = deadline_us.saturating_sub(now_us());
                    if rem == 0 {
                        return Err(FsError::Shed(format!("{path}: deadline exhausted")));
                    }
                    timeout = timeout.min(Duration::from_micros(rem));
                }
                match self.try_range(path, start, end, replica, Some(timeout), request, deadline_us)
                {
                    Ok(bytes) => {
                        if attempt > 1 {
                            self.state.stats.degraded_reads.inc();
                            self.record(Op::Degraded, path, 0);
                        }
                        return Ok(bytes);
                    }
                    Err(e @ FsError::BadRange(_)) => return Err(e),
                    Err(e) => {
                        match &e {
                            FsError::Timeout(_) => {
                                self.state.stats.rpc_timeouts.inc();
                            }
                            FsError::Corrupt(_) => {
                                self.state.stats.crc_failures.inc();
                            }
                            _ => {}
                        }
                        last = e;
                    }
                }
            }
        }
        Err(last)
    }

    /// Read a *fidelity-bounded* approximation of `path`: for progressive
    /// objects, only tiers `0..=min_tier` are decoded (locally or fetched
    /// remotely), trading accuracy for bytes moved. Objects not packed
    /// progressively come back at full fidelity. The result is NEVER
    /// cached — the cache holds exact bytes only, so a later full-fidelity
    /// read of the same path cannot observe the approximation.
    pub fn read_whole_tier(&self, path: &str, min_tier: u8) -> Result<Vec<u8>, FsError> {
        self.record(Op::Read, path, 0);
        // Local progressive object: decode the tier prefix in place.
        if let Some(approx) = self.state.read_local_tiered(path, min_tier)? {
            return Ok(approx);
        }
        if self.state.local_packed(path).is_some() {
            // Local but not progressive: full fidelity is the only tier.
            return self.read_whole(path);
        }
        let owner = self.state.owner_of(path).ok_or_else(|| FsError::NotFound(path.to_string()))?;
        if owner == self.state.rank || owner >= self.state.size {
            return Err(FsError::NotFound(path.to_string()));
        }
        let specs = [GetManySpec::tiered(path, min_tier)];
        let payload = encode_get_many_request_v2(&specs);
        let timeout = self.failover.as_ref().map(|cfg| cfg.rpc_timeout);
        let reply = self
            .service
            .rpc_with_meta(owner, tags::GET_MANY, payload, timeout, RpcMeta::default())
            .map_err(|e| self.rpc_error(&format!("GET_MANY(tier) {path}"), e))?;
        let item = decode_get_many_reply_v2(&reply, 1)?.into_iter().next().expect("one entry")?;
        self.state.stats.remote_opens.inc();
        match item {
            GetManyItem::Partial(p) => {
                let mut tiers = Vec::with_capacity(p.chunks.len());
                for c in &p.chunks {
                    self.state.stats.remote_bytes.add(c.stored.len() as u64);
                    tiers.push(c.decode(p.inner_codec)?);
                }
                let refs: Vec<&[u8]> = tiers.iter().map(Vec::as_slice).collect();
                fanstore_compress::progressive::decode_prefix(&refs, p.raw_len as usize)
                    .map_err(|e| FsError::Corrupt(format!("{path}: tier decode: {e}")))
            }
            GetManyItem::Whole(codec, stat, data) => {
                self.state.stats.remote_bytes.add(data.len() as u64);
                self.state.decompress_timed(codec, &data, stat.size as usize, path)
            }
        }
    }

    /// Translate an rpc error for `what` into the matching [`FsError`]:
    /// a dropped conduit or elapsed deadline both mean "unreachable".
    fn rpc_error(&self, what: &str, e: CommError) -> FsError {
        match e {
            CommError::Timeout | CommError::Disconnected => {
                self.state.stats.rpc_timeouts.inc();
                FsError::Timeout(what.to_string())
            }
            other => FsError::Comm(other.to_string()),
        }
    }

    /// Push a whole object into `rank`'s write store (checkpoint
    /// replication): the peer can then serve GETs for `path` and keeps a
    /// durable copy across this rank's crash. Runs under the failover
    /// deadline when one is attached.
    pub fn put_remote(&self, rank: usize, path: &str, data: &[u8]) -> Result<(), FsError> {
        let payload = crate::daemon::encode_put(path, self.state.rank as u32, data);
        let timeout = self.failover.as_ref().map(|cfg| cfg.rpc_timeout);
        // When timed, the push is one traced request: a `client.put`
        // root span with a `fabric.rpc` child, and the request id rides
        // the envelope so the serving daemon's `daemon.write_serve` span
        // joins the same tree (`fanstore attrib` write attribution).
        let request = if self.timed { self.state.next_request_id() } else { 0 };
        let start = if self.timed { now_us() } else { 0 };
        let meta = self.rpc_meta(request, 0); // writes are never shed on deadline
        let reply = self.service.rpc_with_meta(rank, tags::PUT, payload, timeout, meta);
        if self.timed {
            self.span(request, "fabric.rpc", start);
        }
        let out =
            match reply.map_err(|e| self.rpc_error(&format!("PUT {path} to rank {rank}"), e))? {
                r if r.first() == Some(&crate::daemon::status::OK) => Ok(()),
                _ => Err(FsError::Comm(format!("PUT {path} rejected by rank {rank}"))),
            };
        if self.timed {
            self.span(request, "client.put", start);
        }
        out
    }

    /// `unlink(path)` for output files held on this node (checkpoint GC).
    pub fn unlink(&self, path: &str) -> Result<(), FsError> {
        if self.state.remove_write(path)? {
            Ok(())
        } else {
            Err(FsError::NotFound(path.to_string()))
        }
    }

    /// Ask `rank` to unlink an output file it holds (GC of replicated
    /// checkpoint generations). A missing path reports success: the goal
    /// state — "not there" — already holds.
    pub fn unlink_remote(&self, rank: usize, path: &str) -> Result<(), FsError> {
        let payload = path.as_bytes().to_vec();
        let reply = match &self.failover {
            Some(cfg) => self.service.rpc_timeout(rank, tags::UNLINK, payload, cfg.rpc_timeout),
            None => self.service.rpc(rank, tags::UNLINK, payload),
        };
        match reply.map_err(|e| self.rpc_error(&format!("UNLINK {path} at rank {rank}"), e))? {
            r if matches!(
                r.first(),
                Some(&crate::daemon::status::OK | &crate::daemon::status::NOT_FOUND)
            ) =>
            {
                Ok(())
            }
            _ => Err(FsError::Comm(format!("UNLINK {path} rejected by rank {rank}"))),
        }
    }

    /// Recursively enumerate the dataset the way a training program does
    /// at startup (§II-B1): `readdir` every directory, `stat` every file.
    /// Returns the file paths found under `root`.
    pub fn enumerate(&self, root: &str) -> Result<Vec<String>, FsError> {
        let mut files = Vec::new();
        let mut stack = vec![root.trim_end_matches('/').to_string()];
        while let Some(dir) = stack.pop() {
            let mut stream = self.opendir(&dir)?;
            while let Some(name) = stream.next_entry() {
                let full = if dir.is_empty() { name.to_string() } else { format!("{dir}/{name}") };
                let st = self.stat(&full)?;
                if st.is_dir() {
                    stack.push(full);
                } else {
                    files.push(full);
                }
            }
        }
        files.sort();
        Ok(files)
    }
}

/// The rank responsible for a path's *metadata* (write-forwarding target,
/// §V-D): stable hash of the path modulo node count.
pub fn meta_owner(path: &str, size: usize) -> usize {
    // FNV-1a.
    let mut h = 0xcbf29ce484222325u64;
    for &b in path.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % size.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_owner_is_stable_and_in_range() {
        for size in [1usize, 2, 7, 512] {
            for path in ["a", "out/ckpt_01.h5", "deep/nested/path/file.bin"] {
                let o = meta_owner(path, size);
                assert!(o < size);
                assert_eq!(o, meta_owner(path, size));
            }
        }
    }

    #[test]
    fn meta_owner_spreads_paths() {
        let owners: std::collections::HashSet<usize> =
            (0..100).map(|i| meta_owner(&format!("f{i}"), 16)).collect();
        assert!(owners.len() > 8, "hash should spread over ranks: {owners:?}");
    }

    #[test]
    fn backoff_is_bounded_exponential_and_deterministic() {
        let cfg = FailoverConfig {
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(16),
            seed: 9,
            ..Default::default()
        };
        // Deterministic: same (seed, path, attempt) -> same delay.
        assert_eq!(backoff_delay(&cfg, "a/b", 1), backoff_delay(&cfg, "a/b", 1));
        // Bounded: never beyond the cap plus the 25% jitter allowance.
        for attempt in 1..40 {
            let d = backoff_delay(&cfg, "a/b", attempt);
            assert!(d <= cfg.backoff_max.mul_f64(1.25), "attempt {attempt}: {d:?}");
        }
        // Exponential until the cap: attempt 5 wants 2ms << 4 = 32ms,
        // clamped to the 16ms cap.
        assert!(backoff_delay(&cfg, "a/b", 5) >= cfg.backoff_max);
        assert!(backoff_delay(&cfg, "a/b", 1) < Duration::from_millis(3));
        // Seeded jitter: a different seed shifts the delay.
        let other = FailoverConfig { seed: 10, ..cfg.clone() };
        assert_ne!(backoff_delay(&cfg, "a/b", 1), backoff_delay(&other, "a/b", 1));
    }
}
