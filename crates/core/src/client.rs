//! The POSIX-style client interface (paper §IV-A, Listing 1).
//!
//! The original FanStore intercepts ten glibc calls (`open`, `close`,
//! `read`, `lseek`, `write`, `opendir`, `readdir`, `closedir`, `stat`)
//! with LD_PRELOAD and trampolines. This reproduction exposes the same
//! surface as methods on [`FsClient`], with per-client file-descriptor
//! tables and the paper's multi-read/single-write consistency model:
//! input files may be opened concurrently by any number of readers;
//! output files are written once by one process and are immutable after
//! `close()`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpi_sim::RemoteSender;
use parking_lot::Mutex;

use crate::daemon::{decode_get_reply, tags};
use crate::meta::encode_single;
use crate::node::{decompress_object, NodeState};
use crate::stat::FileStat;
use crate::trace::{Op, TraceRecorder};
use crate::FsError;

/// Seek origin for [`FsClient::lseek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// From the start of the file (`SEEK_SET`).
    Set,
    /// From the current position (`SEEK_CUR`).
    Cur,
    /// From the end of the file (`SEEK_END`).
    End,
}

enum OpenFile {
    Read { path: String, data: Arc<Vec<u8>>, pos: usize },
    Write { path: String, buf: Vec<u8> },
}

/// An open directory stream (`DIR*`).
pub struct DirStream {
    entries: Vec<String>,
    pos: usize,
}

impl DirStream {
    /// `readdir()`: next entry name, or `None` at end of stream.
    pub fn next_entry(&mut self) -> Option<&str> {
        let e = self.entries.get(self.pos)?;
        self.pos += 1;
        Some(e)
    }

    /// Remaining + consumed entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A POSIX-style handle onto the FanStore namespace for one process (one
/// training I/O thread can clone its own).
pub struct FsClient {
    state: Arc<NodeState>,
    service: RemoteSender,
    fds: Mutex<HashMap<i32, OpenFile>>,
    next_fd: AtomicU64,
    trace: Option<Arc<TraceRecorder>>,
}

impl FsClient {
    /// Build a client over a node's state and a send handle on the
    /// service channel.
    pub fn new(state: Arc<NodeState>, service: RemoteSender) -> Self {
        FsClient {
            state,
            service,
            fds: Mutex::new(HashMap::new()),
            next_fd: AtomicU64::new(3),
            trace: None,
        }
    }

    /// Attach an I/O trace recorder; subsequent calls are recorded.
    pub fn with_trace(mut self, trace: Arc<TraceRecorder>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The attached trace recorder, if any.
    pub fn trace(&self) -> Option<&Arc<TraceRecorder>> {
        self.trace.as_ref()
    }

    #[inline]
    fn record(&self, op: Op, path: &str, bytes: u64) {
        if let Some(t) = &self.trace {
            t.record(op, path, bytes);
        }
    }

    /// The node rank this client runs on.
    pub fn rank(&self) -> usize {
        self.state.rank
    }

    /// Number of nodes in the store.
    pub fn nodes(&self) -> usize {
        self.state.size
    }

    /// Shared node state (for inspecting counters in tests/benches).
    pub fn state(&self) -> &Arc<NodeState> {
        &self.state
    }

    fn alloc_fd(&self) -> i32 {
        self.next_fd.fetch_add(1, Ordering::Relaxed) as i32
    }

    /// `open(path, O_RDONLY)`: locate the file (cache → local backend →
    /// remote daemon, Figure 2), decompress if needed, and return a file
    /// descriptor positioned at offset 0.
    pub fn open(&self, path: &str) -> Result<i32, FsError> {
        self.record(Op::Open, path, 0);
        let data = self.fetch(path)?;
        let fd = self.alloc_fd();
        self.fds.lock().insert(fd, OpenFile::Read { path: path.to_string(), data, pos: 0 });
        Ok(fd)
    }

    /// Fetch decompressed contents, populating the cache (shared by
    /// `open` and `read_whole`).
    fn fetch(&self, path: &str) -> Result<Arc<Vec<u8>>, FsError> {
        if let Some(local) = self.state.open_local(path)? {
            return Ok(local);
        }
        // Remote: find the owner from the replicated metadata.
        let owner = self
            .state
            .owner_of(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        if owner == self.state.rank || owner >= self.state.size {
            return Err(FsError::NotFound(path.to_string()));
        }
        let reply = self
            .service
            .rpc(owner, tags::GET, path.as_bytes().to_vec())
            .map_err(|e| FsError::Comm(e.to_string()))?;
        let (codec, stat, compressed) = decode_get_reply(&reply)?;
        self.state.stats.remote_opens.fetch_add(1, Ordering::Relaxed);
        self.state.stats.remote_bytes.fetch_add(compressed.len() as u64, Ordering::Relaxed);
        let plain = decompress_object(codec, &compressed, stat.size as usize, path)?;
        Ok(self.state.cache.insert(path, Arc::new(plain)))
    }

    /// `open(path, O_WRONLY|O_CREAT)`: start a write-once output file.
    pub fn create(&self, path: &str) -> Result<i32, FsError> {
        if self.state.meta.read().get(path).is_some()
            || self.state.writes.read().contains_key(path)
        {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let fd = self.alloc_fd();
        self.fds
            .lock()
            .insert(fd, OpenFile::Write { path: path.to_string(), buf: Vec::new() });
        Ok(fd)
    }

    /// `read(fd, buf)`: copy up to `buf.len()` bytes from the current
    /// position; returns bytes read (0 at EOF).
    pub fn read(&self, fd: i32, buf: &mut [u8]) -> Result<usize, FsError> {
        let mut fds = self.fds.lock();
        match fds.get_mut(&fd) {
            Some(OpenFile::Read { data, pos, path }) => {
                // The offset may sit past EOF (lseek allows it); clamp the
                // slice start so such reads return 0 instead of panicking.
                let start = (*pos).min(data.len());
                let n = buf.len().min(data.len() - start);
                buf[..n].copy_from_slice(&data[start..start + n]);
                *pos += n;
                if let Some(t) = &self.trace {
                    t.record(Op::Read, path, n as u64);
                }
                Ok(n)
            }
            Some(OpenFile::Write { path, .. }) => Err(FsError::ReadOnly(path.clone())),
            None => Err(FsError::BadFd(fd)),
        }
    }

    /// `write(fd, buf)`: append to an output file's write cache.
    pub fn write(&self, fd: i32, buf: &[u8]) -> Result<usize, FsError> {
        let mut fds = self.fds.lock();
        match fds.get_mut(&fd) {
            Some(OpenFile::Write { buf: wbuf, path }) => {
                if let Some(t) = &self.trace {
                    t.record(Op::Write, path, buf.len() as u64);
                }
                wbuf.extend_from_slice(buf);
                Ok(buf.len())
            }
            Some(OpenFile::Read { path, .. }) => Err(FsError::ReadOnly(path.clone())),
            None => Err(FsError::BadFd(fd)),
        }
    }

    /// `lseek(fd, offset, whence)`: reposition a read descriptor; returns
    /// the new offset.
    pub fn lseek(&self, fd: i32, offset: i64, whence: Whence) -> Result<u64, FsError> {
        self.record(Op::Seek, "", 0);
        let mut fds = self.fds.lock();
        match fds.get_mut(&fd) {
            Some(OpenFile::Read { data, pos, .. }) => {
                let base = match whence {
                    Whence::Set => 0i64,
                    Whence::Cur => *pos as i64,
                    Whence::End => data.len() as i64,
                };
                let target = base + offset;
                if target < 0 {
                    return Err(FsError::BadFd(fd));
                }
                *pos = target as usize; // seeking past EOF is legal
                Ok(*pos as u64)
            }
            Some(OpenFile::Write { path, .. }) => Err(FsError::ReadOnly(path.clone())),
            None => Err(FsError::BadFd(fd)),
        }
    }

    /// `close(fd)`: for reads, releases the cache reference; for writes,
    /// finalises the file (immutable from now on) and forwards its
    /// metadata to the owner rank (§V-D).
    pub fn close(&self, fd: i32) -> Result<(), FsError> {
        self.record(Op::Close, "", 0);
        let entry = self.fds.lock().remove(&fd).ok_or(FsError::BadFd(fd))?;
        match entry {
            OpenFile::Read { path, .. } => {
                self.state.cache.close(&path);
                Ok(())
            }
            OpenFile::Write { path, buf } => {
                let entry = self.state.finalize_write(&path, buf)?;
                let owner = meta_owner(&path, self.state.size);
                if owner != self.state.rank {
                    let payload = encode_single(&path, &entry);
                    self.service
                        .rpc(owner, tags::PUT_META, payload)
                        .map_err(|e| FsError::Comm(e.to_string()))?;
                }
                Ok(())
            }
        }
    }

    /// `stat(path)`: answered from the replicated local metadata; for
    /// output files written elsewhere, falls back to the metadata owner
    /// rank.
    pub fn stat(&self, path: &str) -> Result<FileStat, FsError> {
        self.record(Op::Stat, path, 0);
        if let Some(s) = self.state.meta.read().stat(path) {
            return Ok(s);
        }
        let owner = meta_owner(path, self.state.size);
        if owner != self.state.rank {
            let reply = self
                .service
                .rpc(owner, tags::GET_META, path.as_bytes().to_vec())
                .map_err(|e| FsError::Comm(e.to_string()))?;
            if reply.first() == Some(&crate::daemon::status::OK) {
                self.state.merge_meta(&reply[1..])?;
                if let Some(s) = self.state.meta.read().stat(path) {
                    return Ok(s);
                }
            }
        }
        Err(FsError::NotFound(path.to_string()))
    }

    /// `opendir(path)`: snapshot of the directory entries.
    pub fn opendir(&self, path: &str) -> Result<DirStream, FsError> {
        self.record(Op::Readdir, path, 0);
        self.state
            .meta
            .read()
            .readdir(path)
            .map(|entries| DirStream { entries, pos: 0 })
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    /// `closedir(stream)`: release a directory stream (drop suffices; the
    /// method exists to mirror Listing 1's interface).
    pub fn closedir(&self, _stream: DirStream) {}

    /// Convenience: read an entire file (open + read-to-end + close).
    pub fn read_whole(&self, path: &str) -> Result<Vec<u8>, FsError> {
        self.record(Op::Open, path, 0);
        let data = self.fetch(path)?;
        let out = data.to_vec();
        self.record(Op::Read, path, out.len() as u64);
        self.state.cache.close(path);
        self.record(Op::Close, path, 0);
        Ok(out)
    }

    /// Convenience: write an entire output file (create + write + close).
    pub fn write_whole(&self, path: &str, data: &[u8]) -> Result<(), FsError> {
        let fd = self.create(path)?;
        self.write(fd, data)?;
        self.close(fd)
    }

    /// Recursively enumerate the dataset the way a training program does
    /// at startup (§II-B1): `readdir` every directory, `stat` every file.
    /// Returns the file paths found under `root`.
    pub fn enumerate(&self, root: &str) -> Result<Vec<String>, FsError> {
        let mut files = Vec::new();
        let mut stack = vec![root.trim_end_matches('/').to_string()];
        while let Some(dir) = stack.pop() {
            let mut stream = self.opendir(&dir)?;
            while let Some(name) = stream.next_entry() {
                let full =
                    if dir.is_empty() { name.to_string() } else { format!("{dir}/{name}") };
                let st = self.stat(&full)?;
                if st.is_dir() {
                    stack.push(full);
                } else {
                    files.push(full);
                }
            }
        }
        files.sort();
        Ok(files)
    }
}

/// The rank responsible for a path's *metadata* (write-forwarding target,
/// §V-D): stable hash of the path modulo node count.
pub fn meta_owner(path: &str, size: usize) -> usize {
    // FNV-1a.
    let mut h = 0xcbf29ce484222325u64;
    for &b in path.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % size.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_owner_is_stable_and_in_range() {
        for size in [1usize, 2, 7, 512] {
            for path in ["a", "out/ckpt_01.h5", "deep/nested/path/file.bin"] {
                let o = meta_owner(path, size);
                assert!(o < size);
                assert_eq!(o, meta_owner(path, size));
            }
        }
    }

    #[test]
    fn meta_owner_spreads_paths() {
        let owners: std::collections::HashSet<usize> =
            (0..100).map(|i| meta_owner(&format!("f{i}"), 16)).collect();
        assert!(owners.len() > 8, "hash should spread over ranks: {owners:?}");
    }
}
