//! [`WalStore`]: the durable write path — WAL + memtable + compacted
//! pack segments behind bloom filters.
//!
//! ## Write path
//!
//! `put`/`unlink` append a CRC-framed record to the write-ahead log and
//! apply it to the memtable. Records buffer in memory until a *commit*
//! appends them to the medium in one batch and syncs — group commit.
//! With `commit_every = 1` every write is durable before it returns
//! (the daemon's ACK semantics); larger values amortise the modelled
//! fsync over a batch and relax durability to the last commit.
//!
//! ## Flush and compaction
//!
//! When the memtable crosses `memtable_budget` bytes it flushes into an
//! immutable segment — pack-format entries behind a bloom filter
//! ([`super::segment`]) — and the new segment set is published via an
//! atomic CRC-tailed manifest ([`super::manifest`]), written last,
//! exactly the checkpoint generations' publish discipline. Only then is
//! the log trimmed; a crash between publish and trim merely replays
//! records the manifest's `trim_seq` already covers, and replay skips
//! them by sequence. When the set reaches `compact_min_segments`,
//! compaction merges every segment, dropping superseded versions,
//! tombstones and expired TTLs, and publishes the merged set the same
//! way. Compaction is threshold-triggered inline rather than a free
//! thread: the repo's chaos and crash tests assert byte-identical
//! seeded outcomes, which a racing background compactor would break.
//!
//! ## Read path
//!
//! `get` consults the memtable, then each published segment newest
//! first. Every segment's bloom filter lives in memory, so a negative
//! lookup touches no segment data at all — `wal.bloom.negative` counts
//! the skips and `wal.segment.reads` stays at zero, which the crash
//! tests assert directly.

use std::sync::Arc;
use std::time::Duration;

use fanstore_compress::crc32::crc32;
use fanstore_compress::{CodecFamily, CodecId};
use parking_lot::Mutex;

use crate::metrics::{now_us, Counter, Gauge, Histogram, MetricsRegistry};
use crate::FsError;

use super::log::{encode_record, replay, WalRecord};
use super::manifest::{WalManifest, WalSegmentMeta};
use super::media::WalMedia;
use super::memtable::{MemEntry, MemTable};
use super::segment;
use super::segment::SegHeader;

/// Write-path configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Object-name prefix on the medium (`<dir>/LOG`, `<dir>/seg-*`,
    /// `<dir>/MANIFEST`).
    pub dir: String,
    /// Codec for segment values (WAL records stay uncompressed).
    pub codec: CodecId,
    /// Per-segment bloom filter false-positive target.
    pub bloom_fp: f64,
    /// Memtable byte budget; crossing it triggers a flush.
    pub memtable_budget: usize,
    /// Records per automatic group commit. 1 = sync every write before
    /// acknowledging it; N > 1 = batch N appends per sync (relaxed
    /// durability: a crash may lose the last un-committed < N writes).
    pub commit_every: usize,
    /// Compact when the published set reaches this many segments
    /// (0 = only on explicit [`WalStore::compact`]).
    pub compact_min_segments: usize,
    /// Modelled fsync cost for media the cluster runtime constructs on
    /// this store's behalf (see [`super::media::RamMedia`]); ignored
    /// when the medium is supplied pre-built.
    pub sync_cost: Duration,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            dir: "wal".to_string(),
            codec: CodecId::new(CodecFamily::Lz4Hc, 6),
            bloom_fp: 0.01,
            memtable_budget: 1 << 20,
            commit_every: 1,
            compact_min_segments: 4,
            sync_cost: Duration::from_micros(20),
        }
    }
}

/// Result of a lookup.
#[derive(Debug, Clone)]
pub enum Lookup {
    /// The newest version's value.
    Hit(Arc<Vec<u8>>),
    /// The newest version deletes the key (or its TTL expired).
    Tombstone,
    /// The store has never seen the key.
    Miss,
}

impl Lookup {
    /// The value, when this is a hit.
    pub fn value(self) -> Option<Arc<Vec<u8>>> {
        match self {
            Lookup::Hit(v) => Some(v),
            _ => None,
        }
    }
}

/// What recovery found on the medium.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Segments loaded from the published manifest.
    pub segments: usize,
    /// Log records replayed into the memtable.
    pub records: u64,
    /// Log records skipped because the manifest's `trim_seq` already
    /// covers them (stale tail of a crashed trim).
    pub skipped: u64,
    /// Whether the log ended in a torn or corrupt frame.
    pub torn: bool,
    /// Highest sequence recovered (segments and log combined).
    pub durable_seq: u64,
}

/// Verification report for `fanstore wal verify`.
#[derive(Debug, Clone, Default)]
pub struct WalVerify {
    /// Publish counter of the manifest checked.
    pub publish: u64,
    /// Segments whose CRC, header and entries all verified.
    pub segments_ok: usize,
    /// Total entries across verified segments.
    pub entries: u64,
    /// Intact records in the log.
    pub log_records: u64,
    /// Whether the log has a torn tail (a crash artifact, not an error).
    pub log_torn: bool,
    /// Problems found (empty = healthy).
    pub errors: Vec<String>,
}

/// Outcome of one compaction run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segments merged away.
    pub merged_segments: usize,
    /// Raw value bytes read from the inputs.
    pub in_bytes: u64,
    /// Raw value bytes written to the output.
    pub out_bytes: u64,
    /// Superseded older versions dropped.
    pub dropped_versions: u64,
    /// Tombstones retired.
    pub dropped_tombstones: u64,
    /// Entries dropped because their TTL expired.
    pub dropped_expired: u64,
}

/// Handles into the registry for every WAL instrument, resolved once.
#[derive(Debug)]
pub struct WalMetrics {
    /// Records appended (`wal.append.records`).
    pub append_records: Arc<Counter>,
    /// Value bytes appended (`wal.append.bytes`).
    pub append_bytes: Arc<Counter>,
    /// Syncs issued by commits (`wal.sync.count`).
    pub sync_count: Arc<Counter>,
    /// Records per commit batch (`wal.commit.batch`).
    pub commit_batch: Arc<Histogram>,
    /// Memtable flushes (`wal.flush.count`).
    pub flush_count: Arc<Counter>,
    /// Entries flushed (`wal.flush.entries`).
    pub flush_entries: Arc<Counter>,
    /// Segment bytes written by flushes (`wal.flush.bytes`).
    pub flush_bytes: Arc<Counter>,
    /// Compaction runs (`wal.compact.runs`).
    pub compact_runs: Arc<Counter>,
    /// Raw bytes read by compaction (`wal.compact.in_bytes`).
    pub compact_in_bytes: Arc<Counter>,
    /// Raw bytes written by compaction (`wal.compact.out_bytes`).
    pub compact_out_bytes: Arc<Counter>,
    /// Versions + tombstones + expired entries dropped
    /// (`wal.compact.dropped`).
    pub compact_dropped: Arc<Counter>,
    /// Records replayed at open (`wal.replay.records`).
    pub replay_records: Arc<Counter>,
    /// Torn log tails found at open (`wal.replay.torn`).
    pub replay_torn: Arc<Counter>,
    /// Segments loaded at open (`wal.replay.segments`).
    pub replay_segments: Arc<Counter>,
    /// Lookups answered by the memtable (`wal.memtable.hits`).
    pub memtable_hits: Arc<Counter>,
    /// Lookups answered by a segment (`wal.segment.hits`).
    pub segment_hits: Arc<Counter>,
    /// Segment data reads — bloom-positive probes (`wal.segment.reads`).
    pub segment_reads: Arc<Counter>,
    /// Segments skipped by a negative bloom probe (`wal.bloom.negative`).
    pub bloom_negative: Arc<Counter>,
    /// Bloom positives the segment then refuted
    /// (`wal.bloom.false_positive`).
    pub bloom_false_positive: Arc<Counter>,
    /// Lookups missing everywhere (`wal.lookup.miss`).
    pub lookup_miss: Arc<Counter>,
    /// Current memtable bytes (`wal.memtable.bytes`).
    pub memtable_bytes: Arc<Gauge>,
    /// Current published segment count (`wal.segments`).
    pub segments: Arc<Gauge>,
    /// Highest durable sequence (`wal.durable.seq`).
    pub durable_seq: Arc<Gauge>,
}

impl WalMetrics {
    /// Resolve every instrument on `registry` under its stable name.
    pub fn register(registry: &MetricsRegistry) -> Self {
        WalMetrics {
            append_records: registry.counter("wal.append.records"),
            append_bytes: registry.counter("wal.append.bytes"),
            sync_count: registry.counter("wal.sync.count"),
            commit_batch: registry.histogram("wal.commit.batch"),
            flush_count: registry.counter("wal.flush.count"),
            flush_entries: registry.counter("wal.flush.entries"),
            flush_bytes: registry.counter("wal.flush.bytes"),
            compact_runs: registry.counter("wal.compact.runs"),
            compact_in_bytes: registry.counter("wal.compact.in_bytes"),
            compact_out_bytes: registry.counter("wal.compact.out_bytes"),
            compact_dropped: registry.counter("wal.compact.dropped"),
            replay_records: registry.counter("wal.replay.records"),
            replay_torn: registry.counter("wal.replay.torn"),
            replay_segments: registry.counter("wal.replay.segments"),
            memtable_hits: registry.counter("wal.memtable.hits"),
            segment_hits: registry.counter("wal.segment.hits"),
            segment_reads: registry.counter("wal.segment.reads"),
            bloom_negative: registry.counter("wal.bloom.negative"),
            bloom_false_positive: registry.counter("wal.bloom.false_positive"),
            lookup_miss: registry.counter("wal.lookup.miss"),
            memtable_bytes: registry.gauge("wal.memtable.bytes"),
            segments: registry.gauge("wal.segments"),
            durable_seq: registry.gauge("wal.durable.seq"),
        }
    }
}

/// A published segment with its in-memory header (bloom + seq range).
struct LoadedSegment {
    meta: WalSegmentMeta,
    header: SegHeader,
}

/// Mutable store state behind one lock.
struct Inner {
    mem: MemTable,
    /// Encoded frames not yet appended to the medium.
    pending: Vec<u8>,
    pending_records: u64,
    next_seq: u64,
    durable_seq: u64,
    manifest: WalManifest,
    /// Loaded headers, aligned with `manifest.segments` (newest first).
    loaded: Vec<LoadedSegment>,
    next_segment_id: u64,
}

/// A snapshot of the store's shape (the `fanstore wal ls` view).
#[derive(Debug, Clone)]
pub struct WalStatus {
    /// Publish counter of the current manifest.
    pub publish: u64,
    /// Highest log sequence the segments cover.
    pub trim_seq: u64,
    /// Highest durable sequence.
    pub durable_seq: u64,
    /// Keys (and tombstones) buffered in the memtable.
    pub memtable_keys: usize,
    /// Memtable bytes.
    pub memtable_bytes: usize,
    /// Published segments, newest first.
    pub segments: Vec<WalSegmentMeta>,
}

/// The durable write path for one node.
pub struct WalStore {
    media: Arc<dyn WalMedia>,
    cfg: WalConfig,
    inner: Mutex<Inner>,
    metrics: WalMetrics,
}

impl WalStore {
    /// Open (or create) a store on `media`, replaying any previous
    /// state: the published manifest names the segment set, and log
    /// records past its `trim_seq` rebuild the memtable — tolerant of a
    /// torn log tail, intolerant of a corrupt manifest or segment (those
    /// are storage corruption, not crash artifacts).
    pub fn open(
        media: Arc<dyn WalMedia>,
        cfg: WalConfig,
        registry: &MetricsRegistry,
    ) -> Result<(Self, WalReplay), FsError> {
        let metrics = WalMetrics::register(registry);
        let manifest = match media.read(&format!("{}/MANIFEST", cfg.dir)) {
            Some(buf) => WalManifest::decode(&buf)?,
            None => WalManifest::default(),
        };
        let mut loaded = Vec::with_capacity(manifest.segments.len());
        let mut max_segment_id = 0u64;
        let mut durable_seq = manifest.trim_seq;
        for meta in &manifest.segments {
            let blob = media
                .read(&meta.name)
                .ok_or_else(|| FsError::Corrupt(format!("wal: missing segment {}", meta.name)))?;
            if blob.len() as u64 != meta.bytes || crc32(&blob) != meta.crc {
                return Err(FsError::Corrupt(format!("wal: segment {} fails CRC", meta.name)));
            }
            let header = segment::parse_header(&blob)?;
            durable_seq = durable_seq.max(header.last_seq);
            if let Some(id) = segment_id(&meta.name) {
                max_segment_id = max_segment_id.max(id);
            }
            loaded.push(LoadedSegment { meta: meta.clone(), header });
        }
        let log = media.read(&format!("{}/LOG", cfg.dir)).unwrap_or_default();
        let (records, torn) = replay(&log);
        let mut mem = MemTable::new();
        let mut replayed = 0u64;
        let mut skipped = 0u64;
        for rec in &records {
            if rec.seq <= manifest.trim_seq {
                skipped += 1; // a crashed trim left covered records behind
                continue;
            }
            mem.apply(rec);
            replayed += 1;
            durable_seq = durable_seq.max(rec.seq);
        }
        let report =
            WalReplay { segments: loaded.len(), records: replayed, skipped, torn, durable_seq };
        metrics.replay_records.add(replayed);
        metrics.replay_segments.add(loaded.len() as u64);
        if torn {
            metrics.replay_torn.inc();
        }
        metrics.memtable_bytes.set(mem.bytes() as u64);
        metrics.segments.set(loaded.len() as u64);
        metrics.durable_seq.set(durable_seq);
        let inner = Inner {
            mem,
            pending: Vec::new(),
            pending_records: 0,
            next_seq: durable_seq + 1,
            durable_seq,
            manifest,
            loaded,
            next_segment_id: max_segment_id + 1,
        };
        Ok((WalStore { media, cfg, inner: Mutex::new(inner), metrics }, report))
    }

    /// The store's instrument handles.
    pub fn metrics(&self) -> &WalMetrics {
        &self.metrics
    }

    /// The store's configuration.
    pub fn config(&self) -> &WalConfig {
        &self.cfg
    }

    /// Write `value` at `path`. Returns the record's sequence number
    /// once the write is as durable as the configured commit policy
    /// makes it (with `commit_every = 1`, fully durable).
    pub fn put(&self, path: &str, value: Vec<u8>) -> Result<u64, FsError> {
        self.append(path, Some(value), None)
    }

    /// [`WalStore::put`] with a TTL: the entry expires `ttl` from now
    /// (expired entries read as absent and compaction drops them).
    pub fn put_ttl(&self, path: &str, value: Vec<u8>, ttl: Duration) -> Result<u64, FsError> {
        self.append(path, Some(value), Some(ttl))
    }

    /// Delete `path` (a tombstone record; compaction retires it).
    pub fn unlink(&self, path: &str) -> Result<u64, FsError> {
        self.append(path, None, None)
    }

    /// Append one record: WAL frame into the pending batch, memtable
    /// update, then auto-commit/flush/compact per configuration.
    fn append(
        &self,
        path: &str,
        value: Option<Vec<u8>>,
        ttl: Option<Duration>,
    ) -> Result<u64, FsError> {
        if path.len() >= crate::pack::PATH_SIZE {
            return Err(FsError::BadFd(0)); // unreachable via FsClient; guard the pack field
        }
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let expires_us = ttl.map_or(0, |d| now_us().saturating_add(d.as_micros() as u64).max(1));
        let bytes = value.as_ref().map_or(0, Vec::len) as u64;
        let rec = WalRecord {
            seq,
            expires_us,
            tombstone: value.is_none(),
            path: path.to_string(),
            value: value.clone().unwrap_or_default(),
        };
        let mut pending = std::mem::take(&mut inner.pending);
        encode_record(&mut pending, &rec);
        inner.pending = pending;
        inner.pending_records += 1;
        inner.mem.insert(path, MemEntry { seq, expires_us, value: value.map(Arc::new) });
        self.metrics.append_records.inc();
        self.metrics.append_bytes.add(bytes);
        self.metrics.memtable_bytes.set(inner.mem.bytes() as u64);
        if inner.pending_records >= self.cfg.commit_every.max(1) as u64 {
            self.commit_locked(&mut inner)?;
        }
        if inner.mem.bytes() >= self.cfg.memtable_budget {
            self.flush_locked(&mut inner)?;
        }
        Ok(seq)
    }

    /// Group commit: append every pending record to the log in one
    /// batch and sync. Returns the highest durable sequence. An error
    /// means the batch is NOT durable — callers must not acknowledge.
    pub fn commit(&self) -> Result<u64, FsError> {
        let mut inner = self.inner.lock();
        self.commit_locked(&mut inner)?;
        Ok(inner.durable_seq)
    }

    fn commit_locked(&self, inner: &mut Inner) -> Result<(), FsError> {
        if inner.pending_records == 0 {
            return Ok(());
        }
        let batch = inner.pending_records;
        let buf = std::mem::take(&mut inner.pending);
        inner.pending_records = 0;
        self.media.append(&self.log_name(), &buf)?;
        self.media.sync()?;
        inner.durable_seq = inner.next_seq - 1;
        self.metrics.sync_count.inc();
        self.metrics.commit_batch.record(batch);
        self.metrics.durable_seq.set(inner.durable_seq);
        Ok(())
    }

    /// Flush the memtable into a new immutable segment and publish the
    /// extended segment set. No-op on an empty memtable. Returns the
    /// new segment's name.
    pub fn flush(&self) -> Result<Option<String>, FsError> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<Option<String>, FsError> {
        // Everything in the memtable must be in the durable log before
        // the flush covers it: the manifest's trim_seq claims it.
        self.commit_locked(inner)?;
        if inner.mem.is_empty() {
            return Ok(None);
        }
        let entries: Vec<(String, MemEntry)> =
            inner.mem.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let (blob, _raw) = segment::build(&entries, self.cfg.codec, self.cfg.bloom_fp)?;
        let header = segment::parse_header(&blob)?;
        let name = format!("{}/seg-{:08}", self.cfg.dir, inner.next_segment_id);
        let meta = WalSegmentMeta {
            name: name.clone(),
            bytes: blob.len() as u64,
            crc: crc32(&blob),
            first_seq: header.first_seq,
            last_seq: header.last_seq,
            entries: entries.len() as u32,
        };
        // Segment first, sync, then the manifest — the atomic publish
        // point — then the log trim. A crash between any two steps
        // leaves a state replay already handles.
        self.media.write(&name, &blob)?;
        self.media.sync()?;
        let mut manifest = inner.manifest.clone();
        manifest.publish += 1;
        manifest.trim_seq = manifest.trim_seq.max(inner.durable_seq);
        manifest.segments.insert(0, meta.clone());
        self.media.write(&self.manifest_name(), &manifest.encode())?;
        self.media.sync()?;
        self.media.write(&self.log_name(), &[])?;
        // Publish succeeded: adopt the new state.
        inner.next_segment_id += 1;
        inner.manifest = manifest;
        inner.loaded.insert(0, LoadedSegment { meta, header });
        inner.mem.drain();
        self.metrics.flush_count.inc();
        self.metrics.flush_entries.add(entries.len() as u64);
        self.metrics.flush_bytes.add(blob.len() as u64);
        self.metrics.memtable_bytes.set(0);
        self.metrics.segments.set(inner.loaded.len() as u64);
        if self.cfg.compact_min_segments > 0
            && inner.manifest.segments.len() >= self.cfg.compact_min_segments
        {
            self.compact_locked(&mut *inner, now_us())?;
        }
        Ok(Some(name))
    }

    /// Merge every published segment into one, dropping superseded
    /// versions, tombstones and expired TTLs, and publish the merged
    /// set. No-op below two segments.
    pub fn compact(&self) -> Result<CompactionReport, FsError> {
        self.compact_at(now_us())
    }

    /// [`WalStore::compact`] against an explicit clock — tests pin
    /// `now_us` to make TTL expiry deterministic.
    pub fn compact_at(&self, now_us: u64) -> Result<CompactionReport, FsError> {
        let mut inner = self.inner.lock();
        self.compact_locked(&mut inner, now_us)
    }

    fn compact_locked(&self, inner: &mut Inner, now_us: u64) -> Result<CompactionReport, FsError> {
        if inner.manifest.segments.len() < 2 {
            return Ok(CompactionReport::default());
        }
        let mut report = CompactionReport {
            merged_segments: inner.manifest.segments.len(),
            ..Default::default()
        };
        // Newest-first walk: the first version of a key wins; everything
        // after it for the same key is superseded.
        let mut merged: std::collections::BTreeMap<String, MemEntry> =
            std::collections::BTreeMap::new();
        for seg in &inner.loaded {
            let blob = self.media.read(&seg.meta.name).ok_or_else(|| {
                FsError::Corrupt(format!("wal: segment {} vanished", seg.meta.name))
            })?;
            for e in segment::parse_entries(&blob)? {
                report.in_bytes += e.raw_len as u64;
                if merged.contains_key(&e.path) {
                    report.dropped_versions += 1;
                    continue;
                }
                if e.tombstone {
                    report.dropped_tombstones += 1;
                    // Remember the key so older versions drop as
                    // superseded, but emit nothing.
                    merged.insert(e.path, MemEntry { seq: e.seq, expires_us: 0, value: None });
                    continue;
                }
                if e.expires_us != 0 && e.expires_us <= now_us {
                    report.dropped_expired += 1;
                    merged.insert(
                        e.path,
                        MemEntry { seq: e.seq, expires_us: e.expires_us, value: None },
                    );
                    continue;
                }
                let value = Arc::new(e.decode_value()?);
                merged.insert(
                    e.path,
                    MemEntry { seq: e.seq, expires_us: e.expires_us, value: Some(value) },
                );
            }
        }
        let live: Vec<(String, MemEntry)> =
            merged.into_iter().filter(|(_, e)| e.value.is_some()).collect();
        report.out_bytes =
            live.iter().map(|(_, e)| e.value.as_ref().expect("live").len() as u64).sum();
        let old: Vec<String> = inner.manifest.segments.iter().map(|s| s.name.clone()).collect();
        let mut manifest = inner.manifest.clone();
        manifest.publish += 1;
        if live.is_empty() {
            manifest.segments.clear();
            self.media.write(&self.manifest_name(), &manifest.encode())?;
            self.media.sync()?;
            inner.manifest = manifest;
            inner.loaded.clear();
        } else {
            let (blob, _raw) = segment::build(&live, self.cfg.codec, self.cfg.bloom_fp)?;
            let header = segment::parse_header(&blob)?;
            let name = format!("{}/seg-{:08}", self.cfg.dir, inner.next_segment_id);
            let meta = WalSegmentMeta {
                name: name.clone(),
                bytes: blob.len() as u64,
                crc: crc32(&blob),
                first_seq: header.first_seq,
                last_seq: header.last_seq,
                entries: live.len() as u32,
            };
            self.media.write(&name, &blob)?;
            self.media.sync()?;
            manifest.segments = vec![meta.clone()];
            self.media.write(&self.manifest_name(), &manifest.encode())?;
            self.media.sync()?;
            inner.next_segment_id += 1;
            inner.manifest = manifest;
            inner.loaded = vec![LoadedSegment { meta, header }];
        }
        // The old blobs are unreferenced once the manifest landed;
        // deleting them is GC, crash-safe in either order.
        for name in old {
            self.media.delete(&name);
        }
        self.metrics.compact_runs.inc();
        self.metrics.compact_in_bytes.add(report.in_bytes);
        self.metrics.compact_out_bytes.add(report.out_bytes);
        self.metrics
            .compact_dropped
            .add(report.dropped_versions + report.dropped_tombstones + report.dropped_expired);
        self.metrics.segments.set(inner.loaded.len() as u64);
        Ok(report)
    }

    /// Look up the newest version of `path`: memtable, then segments
    /// newest-first, each guarded by its in-memory bloom filter.
    pub fn get(&self, path: &str) -> Result<Lookup, FsError> {
        let now = now_us();
        let inner = self.inner.lock();
        if let Some(e) = inner.mem.get(path) {
            self.metrics.memtable_hits.inc();
            return Ok(match &e.value {
                Some(v) if e.expires_us == 0 || e.expires_us > now => Lookup::Hit(Arc::clone(v)),
                _ => Lookup::Tombstone,
            });
        }
        for seg in &inner.loaded {
            if !seg.header.bloom.contains(path) {
                self.metrics.bloom_negative.inc();
                continue;
            }
            self.metrics.segment_reads.inc();
            let blob = self.media.read(&seg.meta.name).ok_or_else(|| {
                FsError::Corrupt(format!("wal: segment {} vanished", seg.meta.name))
            })?;
            let entries = segment::parse_entries(&blob)?;
            match entries.binary_search_by(|e| e.path.as_str().cmp(path)) {
                Ok(i) => {
                    let e = &entries[i];
                    self.metrics.segment_hits.inc();
                    return Ok(if e.tombstone || (e.expires_us != 0 && e.expires_us <= now) {
                        Lookup::Tombstone
                    } else {
                        Lookup::Hit(Arc::new(e.decode_value()?))
                    });
                }
                Err(_) => {
                    self.metrics.bloom_false_positive.inc();
                }
            }
        }
        self.metrics.lookup_miss.inc();
        Ok(Lookup::Miss)
    }

    /// Whether `path` currently resolves to a value.
    pub fn contains(&self, path: &str) -> bool {
        matches!(self.get(path), Ok(Lookup::Hit(_)))
    }

    /// Highest sequence the medium is guaranteed to hold.
    pub fn durable_seq(&self) -> u64 {
        self.inner.lock().durable_seq
    }

    /// The store's current shape (the `fanstore wal ls` view).
    pub fn status(&self) -> WalStatus {
        let inner = self.inner.lock();
        WalStatus {
            publish: inner.manifest.publish,
            trim_seq: inner.manifest.trim_seq,
            durable_seq: inner.durable_seq,
            memtable_keys: inner.mem.len(),
            memtable_bytes: inner.mem.bytes(),
            segments: inner.manifest.segments.clone(),
        }
    }

    /// Verify everything on the medium: manifest CRC, every segment's
    /// CRC + header + entries, and the log scan. Collects problems
    /// instead of failing fast — the CLI prints them all.
    pub fn verify(&self) -> WalVerify {
        let mut v = WalVerify::default();
        let manifest = match self.media.read(&self.manifest_name()) {
            Some(buf) => match WalManifest::decode(&buf) {
                Ok(m) => m,
                Err(e) => {
                    v.errors.push(format!("manifest: {e}"));
                    WalManifest::default()
                }
            },
            None => WalManifest::default(),
        };
        v.publish = manifest.publish;
        for meta in &manifest.segments {
            match self.media.read(&meta.name) {
                Some(blob) if blob.len() as u64 == meta.bytes && crc32(&blob) == meta.crc => {
                    match segment::parse_entries(&blob) {
                        Ok(entries) if entries.len() as u32 == meta.entries => {
                            v.segments_ok += 1;
                            v.entries += entries.len() as u64;
                        }
                        Ok(entries) => v.errors.push(format!(
                            "{}: {} entries, manifest says {}",
                            meta.name,
                            entries.len(),
                            meta.entries
                        )),
                        Err(e) => v.errors.push(format!("{}: {e}", meta.name)),
                    }
                }
                Some(_) => v.errors.push(format!("{}: CRC mismatch", meta.name)),
                None => v.errors.push(format!("{}: missing", meta.name)),
            }
        }
        let log = self.media.read(&self.log_name()).unwrap_or_default();
        let (records, torn) = replay(&log);
        v.log_records = records.len() as u64;
        v.log_torn = torn;
        v
    }

    fn log_name(&self) -> String {
        format!("{}/LOG", self.cfg.dir)
    }

    fn manifest_name(&self) -> String {
        format!("{}/MANIFEST", self.cfg.dir)
    }
}

/// Parse the numeric id out of a `<dir>/seg-NNNNNNNN` name.
fn segment_id(name: &str) -> Option<u64> {
    name.rsplit("seg-").next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::media::RamMedia;
    use std::time::Duration;

    fn open(media: Arc<dyn WalMedia>, cfg: WalConfig) -> (WalStore, WalReplay) {
        WalStore::open(media, cfg, &MetricsRegistry::new()).expect("open")
    }

    fn tiny_cfg() -> WalConfig {
        WalConfig { memtable_budget: 256, compact_min_segments: 0, ..WalConfig::default() }
    }

    #[test]
    fn put_get_unlink_roundtrip() {
        let media = RamMedia::new(Duration::ZERO);
        let (store, replay) = open(media, WalConfig::default());
        assert_eq!(replay, WalReplay::default());
        store.put("a", b"one".to_vec()).unwrap();
        store.put("a", b"two".to_vec()).unwrap();
        assert_eq!(&**store.get("a").unwrap().value().unwrap(), b"two");
        store.unlink("a").unwrap();
        assert!(matches!(store.get("a").unwrap(), Lookup::Tombstone));
        assert!(matches!(store.get("never").unwrap(), Lookup::Miss));
    }

    #[test]
    fn restart_replays_log_into_memtable() {
        let media = RamMedia::new(Duration::ZERO);
        {
            let (store, _) = open(media.clone(), WalConfig::default());
            store.put("x", b"durable".to_vec()).unwrap();
            store.unlink("gone").unwrap();
        }
        let (store, replay) = open(media, WalConfig::default());
        assert_eq!(replay.records, 2);
        assert!(!replay.torn);
        assert_eq!(&**store.get("x").unwrap().value().unwrap(), b"durable");
        assert!(matches!(store.get("gone").unwrap(), Lookup::Tombstone));
    }

    #[test]
    fn flush_publishes_segment_and_survives_restart() {
        let media = RamMedia::new(Duration::ZERO);
        {
            let (store, _) = open(media.clone(), tiny_cfg());
            store.put("big", vec![7u8; 300].clone()).unwrap(); // crosses the budget: auto-flush
            assert_eq!(store.status().segments.len(), 1);
            assert_eq!(store.status().memtable_keys, 0, "flush drains the memtable");
            store.put("after", b"tail".to_vec()).unwrap();
        }
        let (store, replay) = open(media, tiny_cfg());
        assert_eq!(replay.segments, 1);
        assert_eq!(replay.records, 1, "only the post-flush record replays");
        assert_eq!(&**store.get("big").unwrap().value().unwrap(), &[7u8; 300]);
        assert_eq!(&**store.get("after").unwrap().value().unwrap(), b"tail");
    }

    #[test]
    fn negative_lookup_never_reads_segments() {
        let media = RamMedia::new(Duration::ZERO);
        let cfg = WalConfig { bloom_fp: 0.0001, ..tiny_cfg() };
        let (store, _) = open(media, cfg);
        for i in 0..20 {
            store.put(&format!("k{i}"), vec![1u8; 40]).unwrap();
        }
        store.flush().unwrap();
        let before = store.metrics().segment_reads.get();
        for i in 0..50 {
            let _ = store.get(&format!("absent-{i}")).unwrap();
        }
        // At a 0.01% FP target over 50 probes, zero segment reads is the
        // expected (and deterministic, fixed-hash) outcome.
        assert_eq!(store.metrics().segment_reads.get(), before, "bloom must skip the segment");
        assert!(store.metrics().bloom_negative.get() >= 50);
    }

    #[test]
    fn compaction_merges_and_drops() {
        let media = RamMedia::new(Duration::ZERO);
        let (store, _) = open(media, tiny_cfg());
        store.put("keep", b"v1".to_vec()).unwrap();
        store.put("dead", b"x".to_vec()).unwrap();
        store.flush().unwrap();
        store.put("keep", b"v2".to_vec()).unwrap();
        store.unlink("dead").unwrap();
        store.put_ttl("ttl", b"expiring".to_vec(), Duration::from_micros(1)).unwrap();
        store.flush().unwrap();
        assert_eq!(store.status().segments.len(), 2);
        let report = store.compact_at(u64::MAX).unwrap(); // everything with a TTL is expired
        assert_eq!(report.merged_segments, 2);
        assert_eq!(report.dropped_versions, 2, "old keep + old dead superseded");
        assert_eq!(report.dropped_tombstones, 1);
        assert_eq!(report.dropped_expired, 1);
        assert_eq!(store.status().segments.len(), 1);
        assert_eq!(&**store.get("keep").unwrap().value().unwrap(), b"v2");
        assert!(matches!(store.get("dead").unwrap(), Lookup::Miss), "tombstone retired");
        let v = store.verify();
        assert!(v.errors.is_empty(), "{:?}", v.errors);
        assert_eq!(v.segments_ok, 1);
    }

    #[test]
    fn group_commit_batches_syncs() {
        let media = RamMedia::new(Duration::ZERO);
        let grouped = WalConfig { commit_every: 8, ..WalConfig::default() };
        let (store, _) = open(media.clone(), grouped);
        let syncs0 = media.syncs();
        for i in 0..16 {
            store.put(&format!("g{i}"), vec![0u8; 16]).unwrap();
        }
        assert_eq!(media.syncs() - syncs0, 2, "16 writes, commit_every=8");
        assert_eq!(store.durable_seq(), 16);
        store.put("tail", b"t".to_vec()).unwrap();
        assert_eq!(store.durable_seq(), 16, "17th write awaits its group");
        store.commit().unwrap();
        assert_eq!(store.durable_seq(), 17);
    }

    #[test]
    fn ttl_reads_as_absent_after_expiry() {
        let media = RamMedia::new(Duration::ZERO);
        let (store, _) = open(media, WalConfig::default());
        store.put_ttl("t", b"v".to_vec(), Duration::from_micros(1)).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(store.get("t").unwrap(), Lookup::Tombstone));
    }

    #[test]
    fn auto_compaction_triggers_on_segment_count() {
        let media = RamMedia::new(Duration::ZERO);
        let cfg =
            WalConfig { memtable_budget: 64, compact_min_segments: 3, ..WalConfig::default() };
        let (store, _) = open(media, cfg);
        for i in 0..12 {
            store.put(&format!("k{i}"), vec![i as u8; 80]).unwrap();
        }
        let status = store.status();
        assert!(
            status.segments.len() < 3,
            "threshold compaction keeps the set small: {} segments",
            status.segments.len()
        );
        assert!(store.metrics().compact_runs.get() >= 1);
        for i in 0..12 {
            assert_eq!(&**store.get(&format!("k{i}")).unwrap().value().unwrap(), &[i as u8; 80]);
        }
    }
}
