//! Immutable flushed segments: pack-format entries behind a bloom
//! filter.
//!
//! A segment is what one memtable flush (or one compaction) produces:
//!
//! ```text
//! "FSWS" | version u16 | first_seq u64 | last_seq u64
//! | bloom_len u32 | bloom bytes              (header: loaded at open)
//! | pack partition (pack.rs Table I layout)  (data: read on lookup)
//! ```
//!
//! The entry area reuses [`crate::pack::PartitionBuilder`] /
//! [`crate::pack::parse_partition`] unchanged — path, codec and stat
//! are the pack fields; the per-version metadata the LSM needs rides a
//! fixed prefix of each entry's data field:
//!
//! ```text
//! data = [seq u64][expires_us u64][flags u8][compressed value …]
//! ```
//!
//! Values are compressed with the store's configured codec at flush
//! (falling back to stored-raw when compression does not pay), so the
//! durable footprint of the write path matches the read path's packed
//! partitions. The bloom filter sits in the header so a store can keep
//! every filter in memory and answer negative lookups without reading
//! the entry area at all.

use fanstore_compress::registry::create;
use fanstore_compress::{CodecFamily, CodecId};

use crate::pack::{parse_partition, PartitionBuilder};
use crate::stat::FileStat;
use crate::FsError;

use super::bloom::BloomFilter;
use super::log::FLAG_TOMBSTONE;
use super::memtable::MemEntry;

/// Segment magic bytes.
pub const MAGIC: [u8; 4] = *b"FSWS";

/// Current segment format version.
pub const VERSION: u16 = 1;

/// Fixed header prefix before the bloom filter.
const FIXED: usize = 4 + 2 + 8 + 8 + 4;

/// Per-entry metadata prefix on the pack data field.
const META_PREFIX: usize = 8 + 8 + 1;

/// One decoded segment entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegEntry {
    /// Object path.
    pub path: String,
    /// Version (WAL sequence) of this write.
    pub seq: u64,
    /// Absolute TTL expiry (0 = none).
    pub expires_us: u64,
    /// Whether this version deletes the key.
    pub tombstone: bool,
    /// Codec of `payload`.
    pub codec: CodecId,
    /// Uncompressed value length.
    pub raw_len: usize,
    /// Compressed (or raw) value bytes.
    pub payload: Vec<u8>,
}

impl SegEntry {
    /// Decompress the value.
    pub fn decode_value(&self) -> Result<Vec<u8>, FsError> {
        crate::node::decompress_object(self.codec, &self.payload, self.raw_len, &self.path)
    }
}

/// The header of a segment: everything a store keeps in memory.
#[derive(Debug, Clone)]
pub struct SegHeader {
    /// Lowest WAL sequence covered.
    pub first_seq: u64,
    /// Highest WAL sequence covered.
    pub last_seq: u64,
    /// The segment's bloom filter.
    pub bloom: BloomFilter,
    /// Byte offset where the pack partition starts.
    pub entries_at: usize,
}

/// Build a segment blob from sorted `(path, entry)` pairs. Returns the
/// blob plus the summed raw (uncompressed) value bytes, for compaction
/// amplification accounting. Entries must be non-empty and sorted by
/// path (the memtable and the compactor both iterate sorted).
pub fn build(
    entries: &[(String, MemEntry)],
    codec: CodecId,
    bloom_fp: f64,
) -> Result<(Vec<u8>, u64), FsError> {
    let comp = create(codec).map_err(|e| FsError::Corrupt(format!("wal segment codec: {e}")))?;
    let bloom =
        BloomFilter::from_keys(entries.iter().map(|(p, _)| p.as_str()), entries.len(), bloom_fp);
    let mut part = PartitionBuilder::new();
    let mut raw_bytes = 0u64;
    let mut first_seq = u64::MAX;
    let mut last_seq = 0u64;
    for (path, e) in entries {
        first_seq = first_seq.min(e.seq);
        last_seq = last_seq.max(e.seq);
        let raw: &[u8] = e.value.as_deref().map_or(&[], |v| v.as_slice());
        raw_bytes += raw.len() as u64;
        let (entry_codec, stored) = if raw.is_empty() {
            (CodecId::new(CodecFamily::Store, 0), Vec::new())
        } else {
            let packed = fanstore_compress::compress_to_vec(comp.as_ref(), raw);
            if packed.len() < raw.len() {
                (codec, packed)
            } else {
                (CodecId::new(CodecFamily::Store, 0), raw.to_vec())
            }
        };
        let mut data = Vec::with_capacity(META_PREFIX + stored.len());
        data.extend_from_slice(&e.seq.to_le_bytes());
        data.extend_from_slice(&e.expires_us.to_le_bytes());
        data.push(if e.value.is_none() { FLAG_TOMBSTONE } else { 0 });
        data.extend_from_slice(&stored);
        let mut stat = FileStat::regular(e.seq, raw.len() as u64);
        stat.mtime = e.expires_us;
        part.push(path, entry_codec, &stat, &data);
    }
    let bloom_bytes = bloom.encode();
    let partition = part.finish();
    let mut out = Vec::with_capacity(FIXED + bloom_bytes.len() + partition.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&first_seq.to_le_bytes());
    out.extend_from_slice(&last_seq.to_le_bytes());
    out.extend_from_slice(&(bloom_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&bloom_bytes);
    out.extend_from_slice(&partition);
    Ok((out, raw_bytes))
}

/// Parse just the header (magic, seq range, bloom) — the open/replay
/// path, which must not touch entry data.
pub fn parse_header(blob: &[u8]) -> Result<SegHeader, FsError> {
    let corrupt = |m: &str| FsError::Corrupt(format!("wal segment: {m}"));
    if blob.len() < FIXED {
        return Err(corrupt("truncated header"));
    }
    if blob[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u16::from_le_bytes(blob[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let first_seq = u64::from_le_bytes(blob[6..14].try_into().expect("8 bytes"));
    let last_seq = u64::from_le_bytes(blob[14..22].try_into().expect("8 bytes"));
    let bloom_len = u32::from_le_bytes(blob[22..26].try_into().expect("4 bytes")) as usize;
    let bloom_end = FIXED.checked_add(bloom_len).ok_or_else(|| corrupt("bloom length"))?;
    let bloom =
        BloomFilter::decode(blob.get(FIXED..bloom_end).ok_or_else(|| corrupt("bloom truncated"))?)?;
    Ok(SegHeader { first_seq, last_seq, bloom, entries_at: bloom_end })
}

/// Parse the full entry list (a positive lookup, verify, or compaction).
pub fn parse_entries(blob: &[u8]) -> Result<Vec<SegEntry>, FsError> {
    let header = parse_header(blob)?;
    let corrupt = |m: &str| FsError::Corrupt(format!("wal segment: {m}"));
    let packed = parse_partition(&blob[header.entries_at..])?;
    let mut out = Vec::with_capacity(packed.len());
    for e in packed {
        if e.data.len() < META_PREFIX {
            return Err(corrupt(&format!("{}: entry metadata truncated", e.path)));
        }
        let seq = u64::from_le_bytes(e.data[..8].try_into().expect("8 bytes"));
        let expires_us = u64::from_le_bytes(e.data[8..16].try_into().expect("8 bytes"));
        let tombstone = e.data[16] & FLAG_TOMBSTONE != 0;
        out.push(SegEntry {
            path: e.path,
            seq,
            expires_us,
            tombstone,
            codec: e.codec,
            raw_len: e.stat.size as usize,
            payload: e.data[META_PREFIX..].to_vec(),
        });
    }
    Ok(out)
}

/// Convenience for tests and the store: a sorted entry list from pairs.
pub fn sorted_entries(
    pairs: impl IntoIterator<Item = (String, MemEntry)>,
) -> Vec<(String, MemEntry)> {
    let mut v: Vec<(String, MemEntry)> = pairs.into_iter().collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entry(seq: u64, value: Option<&[u8]>) -> MemEntry {
        MemEntry { seq, expires_us: 0, value: value.map(|v| Arc::new(v.to_vec())) }
    }

    fn lz() -> CodecId {
        CodecId::new(CodecFamily::Lz4Hc, 6)
    }

    #[test]
    fn roundtrip_values_and_tombstones() {
        let entries = sorted_entries([
            ("b/tomb".to_string(), entry(5, None)),
            ("a/data".to_string(), entry(3, Some(&b"compress me ".repeat(50)))),
        ]);
        let (blob, raw) = build(&entries, lz(), 0.01).unwrap();
        assert_eq!(raw, 600);
        let h = parse_header(&blob).unwrap();
        assert_eq!((h.first_seq, h.last_seq), (3, 5));
        assert!(h.bloom.contains("a/data") && h.bloom.contains("b/tomb"));
        let parsed = parse_entries(&blob).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].path, "a/data");
        assert!(!parsed[0].tombstone);
        assert!(parsed[0].payload.len() < 600, "repetitive value compresses");
        assert_eq!(parsed[0].decode_value().unwrap(), b"compress me ".repeat(50));
        assert!(parsed[1].tombstone);
        assert_eq!(parsed[1].seq, 5);
    }

    #[test]
    fn incompressible_values_stored_raw() {
        let noise: Vec<u8> = (0..256u32).flat_map(|i| i.to_le_bytes()).collect();
        let entries = sorted_entries([("n".to_string(), entry(1, Some(&noise)))]);
        let (blob, _) = build(&entries, lz(), 0.01).unwrap();
        let parsed = parse_entries(&blob).unwrap();
        assert_eq!(parsed[0].codec, CodecId::new(CodecFamily::Store, 0));
        assert_eq!(parsed[0].decode_value().unwrap(), noise);
    }

    #[test]
    fn header_rejects_corruption() {
        let entries = sorted_entries([("k".to_string(), entry(1, Some(b"v")))]);
        let (blob, _) = build(&entries, lz(), 0.01).unwrap();
        assert!(parse_header(&blob[..10]).is_err());
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(parse_header(&bad).is_err());
        let mut wrong_version = blob;
        wrong_version[4] = 9;
        assert!(parse_header(&wrong_version).is_err());
    }
}
