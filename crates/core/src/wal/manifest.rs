//! The WAL segment-set manifest: the atomic publish point of a flush
//! or compaction.
//!
//! Same discipline as checkpoint generations ([`crate::ckpt::manifest`]):
//! segments are written first, the manifest last, and the manifest is a
//! single whole-object write with a trailing CRC32 — a crash anywhere
//! before it leaves the previous segment set in force, never a torn
//! one. `trim_seq` records the highest WAL sequence the published
//! segments cover: replay skips log records at or below it, which is
//! what makes the post-publish log truncation safe to crash out of.
//!
//! Layout (little-endian):
//!
//! ```text
//! "FSWL" | version u16 | publish u64 | trim_seq u64 | seg_count u32
//! | seg_count × ([u16 name_len][name][u64 bytes][u32 crc]
//!                [u64 first_seq][u64 last_seq][u32 entries])
//! | crc32 u32 over everything above
//! ```

use fanstore_compress::crc32::crc32;

use crate::FsError;

/// Manifest magic bytes.
pub const MAGIC: [u8; 4] = *b"FSWL";

/// Current manifest format version.
pub const VERSION: u16 = 1;

/// One segment as published by a manifest. Order is newest-first: a
/// lookup walks the list front to back and stops at the first version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalSegmentMeta {
    /// Object name of the segment on the medium.
    pub name: String,
    /// Segment blob length in bytes.
    pub bytes: u64,
    /// CRC32 of the whole blob (verified before parsing).
    pub crc: u32,
    /// Lowest WAL sequence the segment covers.
    pub first_seq: u64,
    /// Highest WAL sequence the segment covers.
    pub last_seq: u64,
    /// Entry count (versions, tombstones included).
    pub entries: u32,
}

/// A published WAL segment set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalManifest {
    /// Monotonic publish counter (flushes + compactions).
    pub publish: u64,
    /// Highest WAL sequence covered by the segments: replay skips log
    /// records with `seq <= trim_seq`.
    pub trim_seq: u64,
    /// Segments, newest first.
    pub segments: Vec<WalSegmentMeta>,
}

impl WalManifest {
    /// Serialise, appending the trailing CRC32.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.segments.len() * 48);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.publish.to_le_bytes());
        out.extend_from_slice(&self.trim_seq.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for s in &self.segments {
            out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&s.bytes.to_le_bytes());
            out.extend_from_slice(&s.crc.to_le_bytes());
            out.extend_from_slice(&s.first_seq.to_le_bytes());
            out.extend_from_slice(&s.last_seq.to_le_bytes());
            out.extend_from_slice(&s.entries.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and CRC-verify a manifest.
    pub fn decode(buf: &[u8]) -> Result<WalManifest, FsError> {
        let corrupt = |m: &str| FsError::Corrupt(format!("wal manifest: {m}"));
        if buf.len() < 4 + 2 + 8 + 8 + 4 + 4 {
            return Err(corrupt("truncated"));
        }
        let (body, tail) = buf.split_at(buf.len() - 4);
        let expect = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
        let actual = crc32(body);
        if expect != actual {
            return Err(corrupt(&format!(
                "CRC mismatch: stored {expect:08x}, computed {actual:08x}"
            )));
        }
        if body[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u16::from_le_bytes(body[4..6].try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let publish = u64::from_le_bytes(body[6..14].try_into().expect("8 bytes"));
        let trim_seq = u64::from_le_bytes(body[14..22].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(body[22..26].try_into().expect("4 bytes")) as usize;
        let mut pos = 26usize;
        let mut segments = Vec::with_capacity(count.min(4096));
        for i in 0..count {
            let nlen = u16::from_le_bytes(
                body.get(pos..pos + 2)
                    .ok_or_else(|| corrupt("segment truncated"))?
                    .try_into()
                    .expect("2 bytes"),
            ) as usize;
            pos += 2;
            let name = std::str::from_utf8(
                body.get(pos..pos + nlen).ok_or_else(|| corrupt("segment truncated"))?,
            )
            .map_err(|_| corrupt(&format!("segment {i} name not utf-8")))?
            .to_string();
            pos += nlen;
            let rest = body.get(pos..pos + 32).ok_or_else(|| corrupt("segment truncated"))?;
            segments.push(WalSegmentMeta {
                name,
                bytes: u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")),
                crc: u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes")),
                first_seq: u64::from_le_bytes(rest[12..20].try_into().expect("8 bytes")),
                last_seq: u64::from_le_bytes(rest[20..28].try_into().expect("8 bytes")),
                entries: u32::from_le_bytes(rest[28..32].try_into().expect("4 bytes")),
            });
            pos += 32;
        }
        if pos != body.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(WalManifest { publish, trim_seq, segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WalManifest {
        WalManifest {
            publish: 3,
            trim_seq: 41,
            segments: vec![
                WalSegmentMeta {
                    name: "wal/seg-00000002".into(),
                    bytes: 9000,
                    crc: 0xFACE,
                    first_seq: 20,
                    last_seq: 41,
                    entries: 12,
                },
                WalSegmentMeta {
                    name: "wal/seg-00000001".into(),
                    bytes: 4096,
                    crc: 0xBEEF,
                    first_seq: 1,
                    last_seq: 19,
                    entries: 7,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(WalManifest::decode(&m.encode()).unwrap(), m);
        let empty = WalManifest::default();
        assert_eq!(WalManifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let buf = sample().encode();
        for i in (0..buf.len()).step_by(5) {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(WalManifest::decode(&bad).is_err(), "flip at byte {i} must be caught");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let buf = sample().encode();
        for cut in 1..buf.len() {
            assert!(WalManifest::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }
}
