//! WAL record framing and torn-tail-tolerant replay.
//!
//! The log is a byte-concatenation of the checkpoint crate's CRC frames
//! ([`crate::ckpt::frame`]) — the `[flags|codec|raw_len|stored_len|
//! crc32]` machinery is reused verbatim rather than duplicated, so a
//! torn log tail is recognised by exactly the code path the chaos tests
//! already exercise. Each frame's payload is one [`WalRecord`]:
//!
//! ```text
//! [seq u64][expires_us u64][flags u8][plen u16][path][value …]
//! ```
//!
//! WAL payloads are stored uncompressed (codec = store): the log is
//! short-lived — flush trims it — and compression belongs to the
//! segment flush, not the latency-critical commit path.

use fanstore_compress::{CodecFamily, CodecId};

use crate::ckpt::frame::{encode_frame, scan_segment};
use crate::FsError;

/// Record flag bit: the record is a tombstone (an `unlink`); it carries
/// no value bytes.
pub const FLAG_TOMBSTONE: u8 = 1;

/// One write-ahead-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (the store-wide version order).
    pub seq: u64,
    /// Absolute expiry on the shared monotonic clock (0 = no TTL).
    pub expires_us: u64,
    /// Whether this record deletes the key instead of writing it.
    pub tombstone: bool,
    /// The object path.
    pub path: String,
    /// The value bytes (empty for tombstones).
    pub value: Vec<u8>,
}

/// Codec stamped on WAL frames (uncompressed).
fn store_codec() -> CodecId {
    CodecId::new(CodecFamily::Store, 0)
}

/// Append one record to `out` as a CRC frame.
pub fn encode_record(out: &mut Vec<u8>, rec: &WalRecord) {
    let mut payload = Vec::with_capacity(8 + 8 + 1 + 2 + rec.path.len() + rec.value.len());
    payload.extend_from_slice(&rec.seq.to_le_bytes());
    payload.extend_from_slice(&rec.expires_us.to_le_bytes());
    payload.push(if rec.tombstone { FLAG_TOMBSTONE } else { 0 });
    payload.extend_from_slice(&(rec.path.len() as u16).to_le_bytes());
    payload.extend_from_slice(rec.path.as_bytes());
    payload.extend_from_slice(&rec.value);
    encode_frame(out, 0, store_codec(), payload.len() as u32, &payload);
}

/// Decode one frame payload back into a record.
fn decode_payload(buf: &[u8]) -> Result<WalRecord, FsError> {
    let corrupt = |m: &str| FsError::Corrupt(format!("wal record: {m}"));
    if buf.len() < 8 + 8 + 1 + 2 {
        return Err(corrupt("truncated"));
    }
    let seq = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
    let expires_us = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let flags = buf[16];
    let plen = u16::from_le_bytes(buf[17..19].try_into().expect("2 bytes")) as usize;
    let path_bytes = buf.get(19..19 + plen).ok_or_else(|| corrupt("path truncated"))?;
    let path = std::str::from_utf8(path_bytes).map_err(|_| corrupt("path not utf-8"))?.to_string();
    let value = buf[19 + plen..].to_vec();
    let tombstone = flags & FLAG_TOMBSTONE != 0;
    if tombstone && !value.is_empty() {
        return Err(corrupt("tombstone with value bytes"));
    }
    Ok(WalRecord { seq, expires_us, tombstone, path, value })
}

/// Tolerant replay of a log blob: records up to the first torn or
/// corrupt frame, plus whether a torn tail was found. A frame that
/// CRC-verifies but decodes to a malformed record also stops the scan
/// as torn — replay must never apply a half-understood record.
pub fn replay(buf: &[u8]) -> (Vec<WalRecord>, bool) {
    let (frames, mut torn) = scan_segment(buf);
    let mut records = Vec::with_capacity(frames.len());
    for f in frames {
        match decode_payload(&f.payload) {
            Ok(r) => records.push(r),
            Err(_) => {
                torn = true;
                break;
            }
        }
    }
    (records, torn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, path: &str, value: &[u8]) -> WalRecord {
        WalRecord { seq, expires_us: 0, tombstone: false, path: path.into(), value: value.to_vec() }
    }

    #[test]
    fn roundtrip_puts_and_tombstones() {
        let mut log = Vec::new();
        encode_record(&mut log, &rec(1, "a/b", b"hello"));
        let tomb = WalRecord {
            seq: 2,
            expires_us: 99,
            tombstone: true,
            path: "a/b".into(),
            value: Vec::new(),
        };
        encode_record(&mut log, &tomb);
        let (records, torn) = replay(&log);
        assert!(!torn);
        assert_eq!(records, vec![rec(1, "a/b", b"hello"), tomb]);
    }

    #[test]
    fn torn_tail_keeps_intact_prefix() {
        let mut log = Vec::new();
        encode_record(&mut log, &rec(1, "x", b"one"));
        encode_record(&mut log, &rec(2, "y", b"two"));
        let second_frame = log.len() / 2; // identical records → identical frames
        for cut in 1..second_frame {
            let (records, torn) = replay(&log[..log.len() - cut]);
            assert!(torn, "cut {cut}");
            assert_eq!(records.len(), 1, "cut {cut}: first record survives");
            assert_eq!(records[0].path, "x");
        }
        // A cut exactly on the frame boundary is indistinguishable from
        // a clean shorter log — and must replay as one.
        let (records, torn) = replay(&log[..log.len() - second_frame]);
        assert!(!torn);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn corrupt_byte_stops_replay() {
        let mut log = Vec::new();
        encode_record(&mut log, &rec(7, "k", b"value bytes"));
        let last = log.len() - 3;
        log[last] ^= 0x40;
        let (records, torn) = replay(&log);
        assert!(torn);
        assert!(records.is_empty());
    }

    #[test]
    fn empty_log_is_whole() {
        let (records, torn) = replay(&[]);
        assert!(records.is_empty());
        assert!(!torn);
    }
}
