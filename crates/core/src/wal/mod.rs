//! `fanstore::wal` — the durable write path.
//!
//! An LSM-flavoured store for node-local writes: a CRC-framed
//! write-ahead log with group commit ([`log`]), an in-memory memtable
//! ([`memtable`]) that flushes into immutable compressed pack-format
//! segments behind bloom filters ([`segment`], [`bloom`]), a CRC-tailed
//! manifest as the atomic publish point ([`manifest`]), and compaction
//! that merges segments while retiring superseded versions, tombstones
//! and expired TTLs — all tied together by [`WalStore`] ([`store`]) on
//! a pluggable durable medium ([`media`]).
//!
//! The pieces deliberately reuse the rest of the crate instead of
//! re-inventing it: WAL frames are [`crate::ckpt::frame`] frames,
//! segment entries ride [`crate::pack`]'s partition layout, values go
//! through the `fanstore-compress` codec registry, and the manifest
//! follows the checkpoint generations' written-last publish discipline.

pub mod bloom;
pub mod log;
pub mod manifest;
pub mod media;
pub mod memtable;
pub mod segment;
pub mod store;

pub use bloom::BloomFilter;
pub use log::{encode_record, replay, WalRecord, FLAG_TOMBSTONE};
pub use manifest::{WalManifest, WalSegmentMeta};
pub use media::{CrashMedia, RamMedia, WalMedia};
pub use memtable::{MemEntry, MemTable};
pub use store::{
    CompactionReport, Lookup, WalConfig, WalMetrics, WalReplay, WalStatus, WalStore, WalVerify,
};
