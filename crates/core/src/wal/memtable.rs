//! The in-memory write buffer between the WAL and the segment flush.
//!
//! A `BTreeMap` keyed by path (sorted, so a flush emits a sorted
//! segment deterministically) holding the newest version of each key —
//! a value, or a tombstone from an `unlink`. Byte accounting drives the
//! flush trigger.

use std::collections::BTreeMap;
use std::sync::Arc;

use super::log::WalRecord;

/// One live memtable entry: the newest version of a key.
#[derive(Debug, Clone)]
pub struct MemEntry {
    /// Version (WAL sequence number) of this write.
    pub seq: u64,
    /// Absolute expiry on the shared monotonic clock (0 = no TTL).
    pub expires_us: u64,
    /// The value; `None` is a tombstone.
    pub value: Option<Arc<Vec<u8>>>,
}

/// Sorted write buffer with byte accounting.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<String, MemEntry>,
    bytes: usize,
}

impl MemTable {
    /// Empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one record (newer seq wins; replay may apply out-of-order
    /// duplicates after a crash-trim race, so the guard is explicit).
    pub fn apply(&mut self, rec: &WalRecord) {
        let value = (!rec.tombstone).then(|| Arc::new(rec.value.clone()));
        self.insert(&rec.path, MemEntry { seq: rec.seq, expires_us: rec.expires_us, value });
    }

    /// Insert the newest version of `path` (older seqs are ignored).
    pub fn insert(&mut self, path: &str, entry: MemEntry) {
        let add = path.len() + entry.value.as_ref().map_or(0, |v| v.len());
        match self.map.get_mut(path) {
            Some(old) if old.seq >= entry.seq => {}
            Some(old) => {
                self.bytes -= path.len() + old.value.as_ref().map_or(0, |v| v.len());
                self.bytes += add;
                *old = entry;
            }
            None => {
                self.bytes += add;
                self.map.insert(path.to_string(), entry);
            }
        }
    }

    /// The newest version of `path`, if buffered here.
    pub fn get(&self, path: &str) -> Option<&MemEntry> {
        self.map.get(path)
    }

    /// Number of buffered keys (tombstones included).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate buffered bytes (keys + values).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Sorted iteration for the segment flush.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &MemEntry)> {
        self.map.iter()
    }

    /// Drain everything (the flush hands the contents to the segment
    /// builder and starts a fresh buffer).
    pub fn drain(&mut self) -> BTreeMap<String, MemEntry> {
        self.bytes = 0;
        std::mem::take(&mut self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(seq: u64, value: &[u8]) -> MemEntry {
        MemEntry { seq, expires_us: 0, value: Some(Arc::new(value.to_vec())) }
    }

    #[test]
    fn newest_seq_wins() {
        let mut m = MemTable::new();
        m.insert("k", put(2, b"new"));
        m.insert("k", put(1, b"old"));
        assert_eq!(m.get("k").unwrap().seq, 2);
        m.insert("k", put(3, b"newest"));
        assert_eq!(&**m.get("k").unwrap().value.as_ref().unwrap(), b"newest");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn byte_accounting_tracks_replacements() {
        let mut m = MemTable::new();
        m.insert("key", put(1, &[0u8; 100]));
        assert_eq!(m.bytes(), 103);
        m.insert("key", put(2, &[0u8; 10]));
        assert_eq!(m.bytes(), 13);
        m.insert("key", MemEntry { seq: 3, expires_us: 0, value: None });
        assert_eq!(m.bytes(), 3, "a tombstone keeps only the key bytes");
        assert_eq!(m.drain().len(), 1);
        assert_eq!(m.bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = MemTable::new();
        for k in ["z", "a", "m"] {
            m.insert(k, put(1, b"v"));
        }
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }
}
