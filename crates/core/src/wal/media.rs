//! The durable medium under the write-ahead log.
//!
//! The reproduction's cluster is in-process, so "the disk" is modelled
//! the same way the fabric's link delay is: [`RamMedia`] is a shared
//! object store whose `sync` spins for a configurable modelled fsync
//! cost. Sharing one `Arc<RamMedia>` across two [`WalStore`] instances
//! models a daemon restart on the same node — the medium survives, the
//! process state does not.
//!
//! [`CrashMedia`] wraps a medium with a deterministic power-cut budget:
//! after `cut` mutation bytes every further mutation is silently
//! black-holed, the mutation in flight lands only a prefix (a torn
//! write), and `sync` reports failure. A write is *acknowledged* iff
//! the `sync` covering it succeeded — exactly the invariant the crash
//! matrix test sweeps.
//!
//! [`WalStore`]: crate::wal::WalStore

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::metrics::now_us;
use crate::FsError;

/// A named-object durable medium for WAL state (log, segments, manifest).
pub trait WalMedia: Send + Sync {
    /// Atomically replace the whole object `name`.
    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), FsError>;

    /// Append to object `name` (created when missing).
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), FsError>;

    /// Make every prior mutation durable ("fsync"). An error means the
    /// caller must NOT acknowledge writes covered by this sync.
    fn sync(&self) -> Result<(), FsError>;

    /// Read a whole object.
    fn read(&self, name: &str) -> Option<Vec<u8>>;

    /// Object names, sorted.
    fn list(&self) -> Vec<String>;

    /// Delete an object (missing is fine — the goal state holds).
    fn delete(&self, name: &str);
}

/// In-RAM medium with a modelled fsync cost.
///
/// `sync` spin-waits `sync_cost` on the shared monotonic clock — the
/// cost is **modelled**, the batching that amortises it is real. A zero
/// cost makes `sync` free (unit tests that don't measure anything).
pub struct RamMedia {
    objects: Mutex<BTreeMap<String, Vec<u8>>>,
    sync_cost: Duration,
    syncs: AtomicU64,
}

impl std::fmt::Debug for RamMedia {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RamMedia")
            .field("objects", &self.objects.lock().len())
            .field("sync_cost", &self.sync_cost)
            .field("syncs", &self.syncs())
            .finish()
    }
}

impl RamMedia {
    /// Empty medium whose `sync` costs `sync_cost` of spin time.
    pub fn new(sync_cost: Duration) -> Arc<Self> {
        Arc::new(RamMedia {
            objects: Mutex::new(BTreeMap::new()),
            sync_cost,
            syncs: AtomicU64::new(0),
        })
    }

    /// Number of syncs performed (the bench's "fsync count").
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }
}

impl WalMedia for RamMedia {
    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), FsError> {
        self.objects.lock().insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), FsError> {
        self.objects.lock().entry(name.to_string()).or_default().extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> Result<(), FsError> {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        if !self.sync_cost.is_zero() {
            let until = now_us() + self.sync_cost.as_micros() as u64;
            while now_us() < until {
                std::hint::spin_loop();
            }
        }
        Ok(())
    }

    fn read(&self, name: &str) -> Option<Vec<u8>> {
        self.objects.lock().get(name).cloned()
    }

    fn list(&self) -> Vec<String> {
        self.objects.lock().keys().cloned().collect()
    }

    fn delete(&self, name: &str) {
        self.objects.lock().remove(name);
    }
}

/// A medium that loses power after a fixed mutation-byte budget.
///
/// Mutations consume budget byte-by-byte: the mutation that crosses the
/// cut lands only the bytes the budget still covered (a torn tail for
/// appends; for whole-object writes the *old* object survives, since a
/// half-replaced object would model a non-atomic rename). Everything
/// after the cut is silently dropped, and `sync` fails — so a store
/// running on this medium can never acknowledge a post-cut write.
pub struct CrashMedia {
    inner: Arc<dyn WalMedia>,
    /// Mutation bytes until the power cut.
    budget: Mutex<u64>,
}

impl CrashMedia {
    /// Wrap `inner`, cutting power after `cut_bytes` mutation bytes.
    pub fn new(inner: Arc<dyn WalMedia>, cut_bytes: u64) -> Arc<Self> {
        Arc::new(CrashMedia { inner, budget: Mutex::new(cut_bytes) })
    }

    /// Whether the cut has happened.
    pub fn dead(&self) -> bool {
        *self.budget.lock() == 0
    }

    /// Mutation bytes still allowed before the cut. A crash sweep runs
    /// once with a huge budget to measure the workload's total mutation
    /// bytes (`initial - remaining`), then sweeps cuts across it.
    pub fn remaining(&self) -> u64 {
        *self.budget.lock()
    }

    /// Charge `len` bytes against the budget; returns how many bytes of
    /// this mutation actually land.
    fn charge(&self, len: usize) -> usize {
        let mut budget = self.budget.lock();
        let landed = (*budget).min(len as u64);
        *budget -= landed;
        landed as usize
    }
}

impl WalMedia for CrashMedia {
    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), FsError> {
        // Whole-object replace is atomic: it lands fully or not at all.
        if self.charge(bytes.len().max(1)) == bytes.len().max(1) {
            self.inner.write(name, bytes)?;
        }
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), FsError> {
        let landed = self.charge(bytes.len());
        if landed > 0 {
            self.inner.append(name, &bytes[..landed])?;
        }
        Ok(())
    }

    fn sync(&self) -> Result<(), FsError> {
        if self.dead() {
            return Err(FsError::Comm("wal medium: power lost".into()));
        }
        self.inner.sync()
    }

    fn read(&self, name: &str) -> Option<Vec<u8>> {
        self.inner.read(name)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn delete(&self, name: &str) {
        if !self.dead() {
            self.charge(1);
            self.inner.delete(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_media_roundtrip() {
        let m = RamMedia::new(Duration::ZERO);
        m.write("a", b"one").unwrap();
        m.append("a", b"two").unwrap();
        m.append("b", b"x").unwrap();
        assert_eq!(m.read("a").unwrap(), b"onetwo");
        assert_eq!(m.list(), vec!["a".to_string(), "b".to_string()]);
        m.delete("a");
        assert!(m.read("a").is_none());
        m.sync().unwrap();
        assert_eq!(m.syncs(), 1);
    }

    #[test]
    fn crash_media_tears_the_inflight_append() {
        let inner = RamMedia::new(Duration::ZERO);
        let m = CrashMedia::new(inner.clone(), 5);
        m.append("log", b"abc").unwrap(); // 3 bytes land
        m.sync().unwrap();
        m.append("log", b"defg").unwrap(); // only "de" lands — torn
        assert!(m.sync().is_err(), "post-cut sync must not acknowledge");
        m.append("log", b"never").unwrap(); // black-holed
        assert_eq!(inner.read("log").unwrap(), b"abcde");
    }

    #[test]
    fn crash_media_keeps_whole_object_writes_atomic() {
        let inner = RamMedia::new(Duration::ZERO);
        inner.write("m", b"old").unwrap();
        let m = CrashMedia::new(inner.clone(), 2);
        m.write("m", b"newer").unwrap(); // crosses the cut: old survives
        assert_eq!(inner.read("m").unwrap(), b"old");
    }
}
