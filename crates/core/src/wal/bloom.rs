//! Per-segment bloom filters: negative lookups skip segment data.
//!
//! A flushed segment is immutable, so its filter is built once from the
//! exact key set and sized for a configured false-positive target. Probe
//! `i` is derived by double hashing (`h1 + i·h2`) *re-mixed* through a
//! 64-bit finaliser before the modulo: plain double hashing leaves the
//! probes on an arithmetic progression, which at the tiny bit arrays of
//! small segments correlates probes across keys and inflates the FP rate
//! orders of magnitude past the textbook `(1 - e^{-kn/m})^k`. The mixed
//! probes behave as independent hashes, so the property tests can hold a
//! 2x bound on the configured target even for few-key filters.
//!
//! Serialisation is a fixed little-endian header plus the bit array;
//! integrity is the enclosing segment's CRC (recorded in the WAL
//! manifest), so the filter carries no checksum of its own.

/// A fixed-size bloom filter over string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    /// Number of hash probes per key.
    k: u32,
    /// Bit-array length in bits.
    nbits: u64,
    /// Keys inserted so far.
    nkeys: u64,
    /// The bit array, 64 bits per word.
    words: Vec<u64>,
}

/// Serialised header: `k u32 | nbits u64 | nkeys u64`.
const HEADER: usize = 4 + 8 + 8;

/// FNV-1a over `key`, seeded so the two probe hashes are independent.
fn hash(key: &str, seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed.wrapping_mul(0x9E3779B97F4A7C15);
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    // Finalise (splitmix64): FNV alone clusters on short common-prefix
    // keys, which double hashing would inherit.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D049BB133111EB);
    h ^ (h >> 31)
}

/// Bit index for probe `i`: double hashing re-mixed so consecutive
/// probes don't sit on an arithmetic progression (see module docs).
fn probe(h1: u64, h2: u64, i: u64, nbits: u64) -> u64 {
    let mut x = h1.wrapping_add(i.wrapping_mul(h2));
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 32;
    x % nbits
}

impl BloomFilter {
    /// Size a filter for `expected` keys at false-positive rate `fp`
    /// (clamped to a sane range). The optimal bit budget is
    /// `m = -n·ln p / (ln 2)²` with `k = (m/n)·ln 2` probes.
    pub fn with_capacity(expected: usize, fp: f64) -> Self {
        let n = expected.max(1) as f64;
        let p = fp.clamp(1e-6, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let nbits = ((-n * p.ln()) / (ln2 * ln2)).ceil().max(64.0) as u64;
        let k = ((nbits as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        BloomFilter { k, nbits, nkeys: 0, words: vec![0; nbits.div_ceil(64) as usize] }
    }

    /// Build from an exact key set (the segment flush path).
    pub fn from_keys<'a, I: IntoIterator<Item = &'a str>>(
        keys: I,
        expected: usize,
        fp: f64,
    ) -> Self {
        let mut b = Self::with_capacity(expected, fp);
        for key in keys {
            b.insert(key);
        }
        b
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &str) {
        let h1 = hash(key, 0);
        let h2 = hash(key, 1) | 1; // odd stride so probes cover the array
        for i in 0..u64::from(self.k) {
            let bit = probe(h1, h2, i, self.nbits);
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        self.nkeys += 1;
    }

    /// Whether the key *may* be present (never a false negative).
    pub fn contains(&self, key: &str) -> bool {
        let h1 = hash(key, 0);
        let h2 = hash(key, 1) | 1;
        (0..u64::from(self.k)).all(|i| {
            let bit = probe(h1, h2, i, self.nbits);
            self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Keys inserted.
    pub fn len(&self) -> u64 {
        self.nkeys
    }

    /// True when no keys were inserted.
    pub fn is_empty(&self) -> bool {
        self.nkeys == 0
    }

    /// Serialised size in bytes.
    pub fn byte_len(&self) -> usize {
        HEADER + self.words.len() * 8
    }

    /// Serialise (header + bit array, little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.nbits.to_le_bytes());
        out.extend_from_slice(&self.nkeys.to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decode a filter serialised by [`BloomFilter::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self, crate::FsError> {
        let corrupt = |m: &str| crate::FsError::Corrupt(format!("bloom: {m}"));
        if buf.len() < HEADER {
            return Err(corrupt("truncated header"));
        }
        let k = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
        let nbits = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
        let nkeys = u64::from_le_bytes(buf[12..20].try_into().expect("8 bytes"));
        let nwords = nbits.div_ceil(64) as usize;
        if k == 0 || nbits == 0 || buf.len() != HEADER + nwords * 8 {
            return Err(corrupt("inconsistent geometry"));
        }
        let words = buf[HEADER..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Ok(BloomFilter { k, nbits, nkeys, words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_basics() {
        let keys: Vec<String> = (0..1000).map(|i| format!("data/file-{i}.bin")).collect();
        let b = BloomFilter::from_keys(keys.iter().map(String::as_str), keys.len(), 0.01);
        for k in &keys {
            assert!(b.contains(k), "inserted key {k} must be present");
        }
    }

    #[test]
    fn fp_rate_near_target() {
        let n = 10_000usize;
        let target = 0.01;
        let b = BloomFilter::from_keys(
            (0..n).map(|i| format!("k{i}")).collect::<Vec<_>>().iter().map(String::as_str),
            n,
            target,
        );
        let fps = (0..n).filter(|i| b.contains(&format!("absent{i}"))).count();
        let rate = fps as f64 / n as f64;
        assert!(rate <= target * 2.0, "fp rate {rate} beyond 2x target {target}");
    }

    #[test]
    fn roundtrip() {
        let mut b = BloomFilter::with_capacity(100, 0.02);
        for i in 0..100 {
            b.insert(&format!("x{i}"));
        }
        let back = BloomFilter::decode(&b.encode()).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.len(), 100);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[]).is_err());
        assert!(BloomFilter::decode(&[0u8; 19]).is_err());
        let mut buf = BloomFilter::with_capacity(10, 0.01).encode();
        buf.pop();
        assert!(BloomFilter::decode(&buf).is_err());
    }

    #[test]
    fn empty_filter_matches_nothing() {
        let b = BloomFilter::with_capacity(64, 0.01);
        assert!(b.is_empty());
        assert!(!b.contains("anything"));
    }
}
