//! A minimal JSON reader/escaper — just enough to round-trip the
//! metrics snapshot (the workspace is offline and carries no serde), so
//! the schema smoke test genuinely parses what the exporter emits.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is normalised.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array's elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's key map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// Escape `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for metric names.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": {"b": [1, 2.5, -3]}, "s": "hi", "t": true, "n": null}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.get("b")),
            Some(&Value::Arr(vec![Value::Num(1.0), Value::Num(2.5), Value::Num(-3.0)]))
        );
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("hi"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let raw = "we\"ird\\key\nwith\ttabs";
        let doc = format!("{{\"{}\": 1}}", escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get(raw).and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }
}
