//! # fanstore
//!
//! A Rust reproduction of **FanStore** — the distributed, compressed,
//! user-space object store for deep-learning training I/O described in
//! *"Efficient I/O for Neural Network Training with Compressed Data"*
//! (Zhang, Huang, Pauloski, Foster — IPPS 2020).
//!
//! FanStore packs a training dataset into compressed partitions
//! ([`pack`], Table I layout), spreads the partitions over the node-local
//! burst buffers of a compute allocation, replicates all file metadata to
//! every node with one allgather ([`meta`]), and serves file contents
//! either from the local partition or by fetching the compressed bytes
//! from the owning node over the interconnect ([`daemon`]). Decompressed
//! files live in a bounded shared cache with a FIFO-except-in-use policy
//! ([`cache`]). Training code accesses all of it through a POSIX-style
//! multi-read/single-write interface ([`client`]).
//!
//! ## Mapping to the paper
//!
//! | paper section | module |
//! |---|---|
//! | §IV-A interface (10 intercepted libc calls) | [`client::FsClient`] |
//! | §IV-B compressed representation (Table I) | [`pack`] |
//! | §IV-C1 loading + metadata allgather | [`cluster`], [`meta`] |
//! | §IV-C2 open/read handling (Figs 2-3) | [`node`], [`client`] |
//! | §IV-C3 cache policy (Fig 4) | [`cache`] |
//! | §V-B data preparation tool | [`prep`] |
//! | §V-D parallel runtime & communication | [`cluster`], [`daemon`] |
//!
//! The original implementation intercepts glibc symbols with
//! `LD_PRELOAD`/trampolines; that mechanism is inherently C/ELF-specific,
//! so this reproduction exposes the same call surface as a library
//! ([`client::FsClient`]) — identical semantics, different capture point
//! (see DESIGN.md).
//!
//! ## Quick start
//!
//! ```
//! use fanstore::cluster::{ClusterConfig, FanStore};
//! use fanstore::prep::{prepare, PrepConfig};
//!
//! // 1. Prepare: pack a dataset into compressed partitions.
//! let files = vec![
//!     ("data/a.bin".to_string(), vec![1u8; 4096]),
//!     ("data/b.bin".to_string(), vec![2u8; 4096]),
//! ];
//! let packed = prepare(files, &PrepConfig { partitions: 2, ..PrepConfig::default() });
//!
//! // 2. Run a 2-node cluster; every node sees the global namespace.
//! let results = FanStore::run(
//!     ClusterConfig { nodes: 2, ..ClusterConfig::default() },
//!     packed.partitions,
//!     |fs| {
//!         let fd = fs.open("data/a.bin").unwrap();
//!         let mut buf = [0u8; 16];
//!         let n = fs.read(fd, &mut buf).unwrap();
//!         fs.close(fd).unwrap();
//!         (n, buf[0])
//!     },
//! );
//! assert_eq!(results, vec![(16, 1), (16, 1)]);
//! ```

pub mod attrib;
pub mod backend;
pub mod bufpool;
pub mod cache;
pub mod ckpt;
pub mod client;
pub mod cluster;
pub mod daemon;
pub mod meta;
pub mod metrics;
pub mod node;
pub mod pack;
pub mod placement;
pub mod prep;
pub mod qos;
pub mod stat;
pub mod trace;
pub mod wal;

/// Errors surfaced through the POSIX-style interface. Variants mirror the
/// errno values the intercepted libc functions would set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT: no such file or directory.
    NotFound(String),
    /// EBADF: bad file descriptor.
    BadFd(i32),
    /// EACCES: operation violates the multi-read/single-write model.
    ReadOnly(String),
    /// EEXIST: the file was already written and closed (write-once).
    AlreadyExists(String),
    /// Data could not be decompressed (corrupt partition or codec
    /// mismatch).
    Corrupt(String),
    /// Communication with a remote daemon failed.
    Comm(String),
    /// A remote daemon did not answer within the configured deadline.
    Timeout(String),
    /// Every replica (and the read-through fallback, if configured)
    /// failed; the read could not be served even in degraded mode.
    Degraded(String),
    /// EAGAIN: the tenant's token bucket rejected the operation even
    /// after the admission backoff retries (QoS admission control).
    Throttled(String),
    /// The serving daemon shed the request — its deadline had expired
    /// (or could not cover the estimated service time), or the tenant's
    /// queue was full. Retryable: the client maps it onto the replica
    /// failover / read-through path.
    Shed(String),
    /// EINVAL: a byte-range read was malformed or out of bounds for the
    /// file (start >= end, or end beyond the file size).
    BadRange(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::BadFd(fd) => write!(f, "bad file descriptor: {fd}"),
            FsError::ReadOnly(p) => write!(f, "write model violation: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file already finalised: {p}"),
            FsError::Corrupt(p) => write!(f, "corrupt data: {p}"),
            FsError::Comm(m) => write!(f, "communication failure: {m}"),
            FsError::Timeout(m) => write!(f, "rpc deadline elapsed: {m}"),
            FsError::Degraded(m) => write!(f, "all replicas failed: {m}"),
            FsError::Throttled(m) => write!(f, "admission throttled: {m}"),
            FsError::Shed(m) => write!(f, "request shed by daemon: {m}"),
            FsError::BadRange(m) => write!(f, "invalid byte range: {m}"),
        }
    }
}

impl std::error::Error for FsError {}
