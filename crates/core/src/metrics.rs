//! First-class observability: counters, gauges and lock-free log-linear
//! latency histograms behind a [`MetricsRegistry`] with stable
//! hierarchical names (`client.get.latency_us`, `fabric.rpc.retries`,
//! `codec.<name>.decode_us`, …), plus export surfaces — Prometheus-style
//! text exposition, a JSON snapshot, and mergeable [`Snapshot`]s whose
//! per-epoch deltas feed `EpochReport` and the bench reports.
//!
//! Overhead discipline: recording is atomics-only on the hot path (no
//! locks, no allocation), and a registry built with
//! [`MetricsRegistry::disabled`] mints instruments whose `record`/`add`
//! are a single branch, so instrumented code needs no `cfg` gates.
//! Instrument handles are `Arc`s resolved once at setup time; the
//! name-keyed maps are only locked at registration and export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

pub mod json;

/// Microseconds since the process-wide monotonic base. All span
/// timestamps and latency measurements share this clock, so spans
/// recorded on different ranks (threads) of one simulated cluster are
/// directly comparable.
pub fn now_us() -> u64 {
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now).elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    enabled: bool,
}

impl Counter {
    fn new(enabled: bool) -> Self {
        Counter { value: AtomicU64::new(0), enabled }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (last write wins).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
    enabled: bool,
}

impl Gauge {
    fn new(enabled: bool) -> Self {
        Gauge { value: AtomicU64::new(0), enabled }
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution bits of the log-linear histogram: each
/// power-of-two major bucket is split into `2^SUB_BITS` linear
/// sub-buckets, bounding the relative error of any recorded value by
/// `1 / 2^(SUB_BITS - 1)` — 1.6% here, about two significant digits.
const SUB_BITS: u32 = 7;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Bound on the tail-exemplar reservoir each histogram keeps: the
/// [`EXEMPLAR_CAP`] largest `(value, request)` pairs ever recorded.
pub const EXEMPLAR_CAP: usize = 8;

/// One tail exemplar: a recorded value tagged with the request id that
/// produced it, so a p99 outlier in a latency histogram links directly
/// to its cross-rank span tree in the trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Exemplar {
    /// The recorded value (latency in µs for `*_us` histograms).
    pub value: u64,
    /// Request id of the operation that recorded it (see
    /// [`crate::trace::SpanEvent::request`]).
    pub request: u64,
}

/// A lock-free log-linear (HDR-style) histogram of `u64` values.
///
/// Values below `2^SUB_BITS` are recorded exactly; larger values keep
/// their top [`SUB_BITS`] mantissa bits, so every bucket's width is at
/// most ~1.6% of its lower bound. Recording is a handful of relaxed
/// atomic operations; histograms with the same geometry (always true
/// here) can be [`merge`](Histogram::merge)d.
#[derive(Debug)]
pub struct Histogram {
    /// Empty when the histogram is disabled (no memory, no recording).
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// The [`EXEMPLAR_CAP`] largest `(value, request)` pairs recorded via
    /// [`Histogram::record_with_exemplar`], sorted ascending. A bounded
    /// deterministic reservoir: the retained set depends only on the
    /// multiset of recorded pairs, never on thread interleaving.
    exemplars: Mutex<Vec<Exemplar>>,
}

impl Histogram {
    fn new(enabled: bool) -> Self {
        let buckets: Box<[AtomicU64]> =
            if enabled { (0..BUCKETS).map(|_| AtomicU64::new(0)).collect() } else { Box::new([]) };
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplars: Mutex::new(Vec::new()),
        }
    }

    /// Bucket index of `v`.
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let exp = msb - (SUB_BITS - 1);
        let mantissa = (v >> exp) as usize; // in [SUB/2, SUB)
        (exp as usize) * SUB + mantissa
    }

    /// Inclusive `[low, high]` value range of bucket `i`.
    fn bucket_range(i: usize) -> (u64, u64) {
        let exp = (i / SUB) as u32;
        let mantissa = (i % SUB) as u64;
        if exp == 0 {
            (mantissa, mantissa)
        } else {
            let low = mantissa << exp;
            // `(1 << exp) - 1` before the add: the top bucket's high end
            // is exactly `u64::MAX`, so adding the width first overflows.
            (low, low + ((1u64 << exp) - 1))
        }
    }

    /// The inclusive bucket bounds `v` would land in (for tests and
    /// renderers).
    pub fn bounds_of(v: u64) -> (u64, u64) {
        Self::bucket_range(Self::index(v))
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.buckets.is_empty() {
            return;
        }
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// [`Histogram::record`] plus tail-exemplar sampling: when the pair
    /// `(v, request)` ranks among the [`EXEMPLAR_CAP`] largest recorded
    /// so far it enters the exemplar reservoir, so the histogram's tail
    /// (p99 and beyond, once enough values landed) carries request ids
    /// that resolve to span trees. `request == 0` (untraced) records the
    /// value only.
    pub fn record_with_exemplar(&self, v: u64, request: u64) {
        self.record(v);
        if self.buckets.is_empty() || request == 0 {
            return;
        }
        let candidate = Exemplar { value: v, request };
        let mut ex = self.exemplars.lock();
        if ex.len() < EXEMPLAR_CAP {
            let pos = ex.partition_point(|e| *e < candidate);
            ex.insert(pos, candidate);
        } else if ex[0] < candidate {
            ex.remove(0);
            let pos = ex.partition_point(|e| *e < candidate);
            ex.insert(pos, candidate);
        }
    }

    /// The retained tail exemplars, largest value first.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let mut ex = self.exemplars.lock().clone();
        ex.reverse();
        ex
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, low to
    /// high — the raw series behind the Prometheus `le` exposition.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_range(i).1, n))
            })
            .collect()
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the buckets: the
    /// midpoint of the bucket holding the target rank, clamped to the
    /// observed `[min, max]`. Estimates are monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 || self.buckets.is_empty() {
            return 0;
        }
        if q >= 1.0 {
            return self.max(); // exact, not a bucket midpoint
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let (low, high) = Self::bucket_range(i);
                let mid = low + (high - low) / 2;
                return mid.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Fold `other`'s recordings into `self` (bucket-wise addition):
    /// equivalent to having recorded the union of both value streams,
    /// within the bucket precision.
    pub fn merge(&self, other: &Histogram) {
        if self.buckets.is_empty() || other.buckets.is_empty() {
            return;
        }
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        if other.count() > 0 {
            self.count.fetch_add(other.count(), Ordering::Relaxed);
            self.sum.fetch_add(other.sum(), Ordering::Relaxed);
            self.min.fetch_min(other.min(), Ordering::Relaxed);
            self.max.fetch_max(other.max(), Ordering::Relaxed);
        }
        // Exemplar union, keeping the CAP largest pairs overall — the
        // same set a single histogram would have retained.
        let theirs = other.exemplars.lock().clone();
        if !theirs.is_empty() {
            let mut mine = self.exemplars.lock();
            mine.extend(theirs);
            mine.sort_unstable();
            if mine.len() > EXEMPLAR_CAP {
                let drop = mine.len() - EXEMPLAR_CAP;
                mine.drain(..drop);
            }
        }
    }

    /// Point-in-time summary (count, sum, min/max, p50/p90/p99).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Summary statistics of one histogram at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Name-keyed home of every instrument. Names are hierarchical,
/// dot-separated, lowercase: `<layer>.<operation>.<unit>` — e.g.
/// `client.get.latency_us`, `daemon.served.requests`,
/// `fabric.rpc.retries`, `codec.lz4hc-9.decode_us` (see DESIGN.md §6).
///
/// `counter`/`gauge`/`histogram` are get-or-create and return shared
/// handles; resolve them once and record through the handle.
pub struct MetricsRegistry {
    enabled: bool,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A live registry: instruments record.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A disabled registry: instruments exist (names resolve, exports
    /// work) but every `record`/`add`/`set` is a no-op behind a single
    /// branch, and histograms allocate no buckets.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        MetricsRegistry {
            enabled,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether instruments from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(
            map.entry(name.to_string()).or_insert_with(|| Arc::new(Counter::new(self.enabled))),
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        Arc::clone(
            map.entry(name.to_string()).or_insert_with(|| Arc::new(Gauge::new(self.enabled))),
        )
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(
            map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new(self.enabled))),
        )
    }

    /// Fold every instrument of `other` into `self` (creating missing
    /// ones): counters add, gauges add (they are bytes/message totals
    /// here), histograms merge. Used to aggregate per-rank registries
    /// into one cluster-wide view.
    pub fn merge(&self, other: &MetricsRegistry) {
        for (name, c) in other.counters.lock().iter() {
            self.counter(name).add(c.get());
        }
        for (name, g) in other.gauges.lock().iter() {
            let mine = self.gauge(name);
            mine.set(mine.get() + g.get());
        }
        for (name, h) in other.histograms.lock().iter() {
            self.histogram(name).merge(h);
        }
    }

    /// Point-in-time snapshot of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        // One pass over the histogram map under a single lock: the guard
        // from a struct-literal field initializer lives to the end of the
        // whole expression, so locking the map once per field would
        // deadlock against itself.
        let hists = self.histograms.lock();
        let histograms = hists.iter().map(|(k, v)| (k.clone(), v.summary())).collect();
        let exemplars = hists
            .iter()
            .filter_map(|(k, v)| {
                let ex = v.exemplars();
                (!ex.is_empty()).then(|| (k.clone(), ex))
            })
            .collect();
        drop(hists);
        Snapshot {
            counters: self.counters.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms,
            exemplars,
        }
    }

    /// JSON export of the current state (see [`Snapshot::to_json`]).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Prometheus text-exposition export: every family gets `# HELP` and
    /// `# TYPE` lines; counters and gauges are single samples, and
    /// histograms are real Prometheus histograms — cumulative
    /// `_bucket{le="…"}` series over the non-empty log-linear buckets
    /// (each `le` is the bucket's inclusive upper bound), closed by
    /// `le="+Inf"`, `_sum` and `_count`. Dots in names become
    /// underscores and every family is prefixed `fanstore_`.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 9);
            out.push_str("fanstore_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            out
        }
        let mut out = String::new();
        for (name, c) in self.counters.lock().iter() {
            let n = sanitize(name);
            out.push_str(&format!(
                "# HELP {n} fanstore counter `{name}`\n# TYPE {n} counter\n{n} {}\n",
                c.get()
            ));
        }
        for (name, g) in self.gauges.lock().iter() {
            let n = sanitize(name);
            out.push_str(&format!(
                "# HELP {n} fanstore gauge `{name}`\n# TYPE {n} gauge\n{n} {}\n",
                g.get()
            ));
        }
        for (name, h) in self.histograms.lock().iter() {
            let n = sanitize(name);
            out.push_str(&format!(
                "# HELP {n} fanstore histogram `{name}`\n# TYPE {n} histogram\n"
            ));
            let mut cumulative = 0u64;
            for (upper, count) in h.nonzero_buckets() {
                cumulative += count;
                out.push_str(&format!("{n}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum(), h.count()));
        }
        out
    }
}

/// A point-in-time copy of a registry's instruments, comparable and
/// subtractable — the unit that `EpochReport` carries per epoch run and
/// the bench reports render.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Tail exemplars by histogram name (largest value first; only
    /// histograms with at least one exemplar appear).
    pub exemplars: BTreeMap<String, Vec<Exemplar>>,
}

impl Snapshot {
    /// The change since `before`: counters and histogram count/sum are
    /// subtracted (instruments absent from `before` keep their value).
    /// Gauges are point-in-time values, *not* rates — a delta between
    /// two gauge observations is meaningless (e.g. `cache.resident_bytes`
    /// shrinking across an epoch is not "negative work") — so the delta
    /// reports every gauge as last-observed: the value at `self`'s
    /// capture time, untouched. Histogram quantiles/min/max and
    /// exemplars likewise stay point-in-time.
    pub fn delta(&self, before: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                (k.clone(), v.saturating_sub(before.counters.get(k).copied().unwrap_or(0)))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let b = before.histograms.get(k).copied().unwrap_or_default();
                let mut d = *h;
                d.count = h.count.saturating_sub(b.count);
                d.sum = h.sum.saturating_sub(b.sum);
                (k.clone(), d)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            exemplars: self.exemplars.clone(),
        }
    }

    /// Value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serialise as a JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {"name":
    /// {"count": .., "sum": .., "min": .., "max": .., "p50": .., "p90":
    /// .., "p99": ..}, ..}, "exemplars": {"name": [{"value": ..,
    /// "request": "<hex>"}, ..], ..}}`. Exemplar request ids are hex
    /// strings in the same format the trace dump uses, so a dashboard
    /// can join an outlier straight to its span timeline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_map(&mut out, &self.counters, |out, v| out.push_str(&v.to_string()));
        out.push_str("},\"gauges\":{");
        push_map(&mut out, &self.gauges, |out, v| out.push_str(&v.to_string()));
        out.push_str("},\"histograms\":{");
        push_map(&mut out, &self.histograms, |out, h| {
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
            ));
        });
        out.push_str("},\"exemplars\":{");
        push_map(&mut out, &self.exemplars, |out, list| {
            out.push('[');
            for (i, e) in list.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"value\":{},\"request\":\"{:x}\"}}", e.value, e.request));
            }
            out.push(']');
        });
        out.push_str("}}");
        out
    }
}

/// Append `"key":<value>` pairs of a map, JSON-escaping the keys.
fn push_map<V>(out: &mut String, map: &BTreeMap<String, V>, mut fmt: impl FnMut(&mut String, &V)) {
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json::escape(k));
        out.push_str("\":");
        fmt(out, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("client.local.opens");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same instrument.
        assert_eq!(reg.counter("client.local.opens").get(), 5);
        let g = reg.gauge("fabric.bytes_sent");
        g.set(42);
        g.set(17);
        assert_eq!(g.get(), 17);
    }

    #[test]
    fn histogram_buckets_bracket_values() {
        for v in [0u64, 1, 7, 127, 128, 129, 1000, 65_535, 1 << 33, u64::MAX / 3] {
            let (low, high) = Histogram::bounds_of(v);
            assert!(low <= v && v <= high, "{v}: [{low}, {high}]");
            // Precision guarantee: bucket width <= ~1.6% of its floor.
            if low >= SUB as u64 {
                assert!((high - low) as f64 <= low as f64 / 63.0, "{v}: [{low}, {high}]");
            }
        }
    }

    #[test]
    fn histogram_quantiles_and_exact_stats() {
        let h = Histogram::new(true);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((490..=510).contains(&p50), "p50 {p50}");
        assert!((975..=1000).contains(&p99), "p99 {p99}");
        assert!(h.quantile(0.0) <= p50 && p50 <= p99 && p99 <= h.quantile(1.0));
    }

    #[test]
    fn histogram_merge_equals_union() {
        let a = Histogram::new(true);
        let b = Histogram::new(true);
        let union = Histogram::new(true);
        for v in [3u64, 99, 4096, 70_000] {
            a.record(v);
            union.record(v);
        }
        for v in [1u64, 250, 8_000_000] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), union.summary());
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = MetricsRegistry::disabled();
        let c = reg.counter("x");
        let h = reg.histogram("y.latency_us");
        let g = reg.gauge("z");
        c.add(10);
        h.record(99);
        g.set(5);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 0);
        // Exports still work and stay well-formed.
        assert!(json::parse(&reg.to_json()).is_ok());
    }

    #[test]
    fn snapshot_delta_subtracts_counters() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(5);
        reg.histogram("h").record(10);
        let before = reg.snapshot();
        reg.counter("a").add(3);
        reg.counter("b").inc();
        reg.histogram("h").record(20);
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.counter("a"), 3);
        assert_eq!(delta.counter("b"), 1);
        assert_eq!(delta.histograms["h"].count, 1);
        assert_eq!(delta.histograms["h"].sum, 20);
    }

    #[test]
    fn registry_merge_aggregates() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("ops").add(2);
        b.counter("ops").add(3);
        b.counter("only_b").inc();
        a.histogram("lat").record(10);
        b.histogram("lat").record(1000);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("ops"), 5);
        assert_eq!(snap.counter("only_b"), 1);
        assert_eq!(snap.histograms["lat"].count, 2);
        assert_eq!(snap.histograms["lat"].max, 1000);
    }

    #[test]
    fn json_export_parses_and_contains_names() {
        let reg = MetricsRegistry::new();
        reg.counter("client.degraded.reads").add(7);
        reg.histogram("client.get.latency_us").record(120);
        let parsed = json::parse(&reg.to_json()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("client.degraded.reads"))
                .and_then(|v| v.as_u64()),
            Some(7)
        );
        let h = parsed.get("histograms").and_then(|h| h.get("client.get.latency_us")).unwrap();
        assert_eq!(h.get("count").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("client.remote.opens").add(3);
        reg.histogram("client.get.latency_us").record(50);
        let text = reg.to_prometheus();
        assert!(text.contains("# HELP fanstore_client_remote_opens"));
        assert!(text.contains("# TYPE fanstore_client_remote_opens counter"));
        assert!(text.contains("fanstore_client_remote_opens 3"));
        assert!(text.contains("# TYPE fanstore_client_get_latency_us histogram"));
        assert!(text.contains("fanstore_client_get_latency_us_bucket{le=\"50\"} 1"));
        assert!(text.contains("fanstore_client_get_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("fanstore_client_get_latency_us_count 1"));
    }

    /// Minimal exposition-format parser for the round-trip test:
    /// `(help families, type families, samples)`.
    type Exposition = (Vec<String>, Vec<(String, String)>, Vec<(String, u64)>);

    fn parse_prometheus(text: &str) -> Exposition {
        let mut helps = Vec::new();
        let mut types = Vec::new();
        let mut samples = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                helps.push(rest.split_whitespace().next().unwrap().to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                types.push((it.next().unwrap().to_string(), it.next().unwrap().to_string()));
            } else if !line.is_empty() {
                let (series, value) = line.rsplit_once(' ').expect("sample line");
                samples.push((series.to_string(), value.parse().expect("sample value")));
            }
        }
        (helps, types, samples)
    }

    #[test]
    fn prometheus_histogram_buckets_round_trip() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("fabric.rpc.latency_us");
        let values = [3u64, 3, 40, 500, 500, 500, 65_000];
        for v in values {
            h.record(v);
        }
        reg.counter("ops").add(9);
        let (helps, types, samples) = parse_prometheus(&reg.to_prometheus());
        // Every family carries HELP and TYPE.
        for fam in ["fanstore_ops", "fanstore_fabric_rpc_latency_us"] {
            assert!(helps.iter().any(|h| h == fam), "missing HELP for {fam}");
            assert!(types.iter().any(|(n, _)| n == fam), "missing TYPE for {fam}");
        }
        assert!(types.contains(&("fanstore_fabric_rpc_latency_us".into(), "histogram".into())));
        // The bucket series is cumulative and non-decreasing, the +Inf
        // bucket equals _count, and _sum/_count round-trip exactly.
        let buckets: Vec<(u64, u64)> = samples
            .iter()
            .filter_map(|(s, v)| {
                let le = s.strip_prefix("fanstore_fabric_rpc_latency_us_bucket{le=\"")?;
                let le = le.strip_suffix("\"}")?;
                Some((le.parse().unwrap_or(u64::MAX), *v))
            })
            .collect();
        assert!(buckets.len() >= 4, "one bucket per distinct value class + Inf: {buckets:?}");
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1), "{buckets:?}");
        assert_eq!(buckets.last().unwrap().1, values.len() as u64, "+Inf holds every record");
        // Each recorded value is inside the cumulative count at its
        // bucket's upper bound.
        for v in values {
            let (_, high) = Histogram::bounds_of(v);
            let at = buckets.iter().find(|(le, _)| *le >= high).unwrap().1;
            assert!(at >= values.iter().filter(|&&x| x <= v).count() as u64 / 2, "le {high}: {at}");
        }
        let get = |name: &str| samples.iter().find(|(s, _)| s == name).map(|(_, v)| *v);
        assert_eq!(get("fanstore_fabric_rpc_latency_us_sum"), Some(values.iter().sum()));
        assert_eq!(get("fanstore_fabric_rpc_latency_us_count"), Some(values.len() as u64));
        assert_eq!(get("fanstore_ops"), Some(9));
    }

    #[test]
    fn exemplar_reservoir_keeps_largest_deterministically() {
        let h = Histogram::new(true);
        for i in 1..=100u64 {
            h.record_with_exemplar(i, 0x1000 + i);
        }
        let ex = h.exemplars();
        assert_eq!(ex.len(), EXEMPLAR_CAP);
        // Largest-first, and exactly the top CAP values with their ids.
        for (i, e) in ex.iter().enumerate() {
            assert_eq!(e.value, 100 - i as u64);
            assert_eq!(e.request, 0x1000 + e.value);
        }
        // request 0 (untraced) never enters the reservoir.
        h.record_with_exemplar(10_000, 0);
        assert_eq!(h.exemplars().len(), EXEMPLAR_CAP);
        assert_eq!(h.exemplars()[0].value, 100);
    }

    #[test]
    fn exemplar_merge_equals_union() {
        let a = Histogram::new(true);
        let b = Histogram::new(true);
        let union = Histogram::new(true);
        for v in [5u64, 900, 30] {
            a.record_with_exemplar(v, v * 2);
            union.record_with_exemplar(v, v * 2);
        }
        for v in [1000u64, 7, 450, 31, 32, 33, 34, 35, 36] {
            b.record_with_exemplar(v, v * 2);
            union.record_with_exemplar(v, v * 2);
        }
        a.merge(&b);
        assert_eq!(a.exemplars(), union.exemplars());
        assert_eq!(a.exemplars()[0], Exemplar { value: 1000, request: 2000 });
    }

    #[test]
    fn snapshot_delta_reports_gauges_last_observed() {
        // Gauges are point-in-time: the per-epoch delta must carry the
        // value at snapshot time, not a misleading difference.
        let reg = MetricsRegistry::new();
        reg.gauge("cache.resident_bytes").set(1000);
        let before = reg.snapshot();
        reg.gauge("cache.resident_bytes").set(400); // cache shrank
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.gauges["cache.resident_bytes"], 400, "last-observed, not 1000-400");
    }

    #[test]
    fn exemplars_survive_snapshot_and_json() {
        let reg = MetricsRegistry::new();
        reg.histogram("client.get.latency_us").record_with_exemplar(777, 0xABC);
        let snap = reg.snapshot();
        assert_eq!(
            snap.exemplars["client.get.latency_us"],
            vec![Exemplar { value: 777, request: 0xABC }]
        );
        let parsed = json::parse(&snap.to_json()).unwrap();
        let ex = parsed.get("exemplars").and_then(|e| e.get("client.get.latency_us")).unwrap();
        let first = ex.as_arr().expect("exemplar array").first().expect("one exemplar");
        assert_eq!(first.get("value").and_then(|v| v.as_u64()), Some(777));
        assert_eq!(first.get("request").and_then(|v| v.as_str()), Some("abc"));
    }

    #[test]
    fn now_us_is_monotone() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
