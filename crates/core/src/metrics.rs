//! First-class observability: counters, gauges and lock-free log-linear
//! latency histograms behind a [`MetricsRegistry`] with stable
//! hierarchical names (`client.get.latency_us`, `fabric.rpc.retries`,
//! `codec.<name>.decode_us`, …), plus export surfaces — Prometheus-style
//! text exposition, a JSON snapshot, and mergeable [`Snapshot`]s whose
//! per-epoch deltas feed `EpochReport` and the bench reports.
//!
//! Overhead discipline: recording is atomics-only on the hot path (no
//! locks, no allocation), and a registry built with
//! [`MetricsRegistry::disabled`] mints instruments whose `record`/`add`
//! are a single branch, so instrumented code needs no `cfg` gates.
//! Instrument handles are `Arc`s resolved once at setup time; the
//! name-keyed maps are only locked at registration and export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

pub mod json;

/// Microseconds since the process-wide monotonic base. All span
/// timestamps and latency measurements share this clock, so spans
/// recorded on different ranks (threads) of one simulated cluster are
/// directly comparable.
pub fn now_us() -> u64 {
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now).elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    enabled: bool,
}

impl Counter {
    fn new(enabled: bool) -> Self {
        Counter { value: AtomicU64::new(0), enabled }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (last write wins).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
    enabled: bool,
}

impl Gauge {
    fn new(enabled: bool) -> Self {
        Gauge { value: AtomicU64::new(0), enabled }
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution bits of the log-linear histogram: each
/// power-of-two major bucket is split into `2^SUB_BITS` linear
/// sub-buckets, bounding the relative error of any recorded value by
/// `1 / 2^(SUB_BITS - 1)` — 1.6% here, about two significant digits.
const SUB_BITS: u32 = 7;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// A lock-free log-linear (HDR-style) histogram of `u64` values.
///
/// Values below `2^SUB_BITS` are recorded exactly; larger values keep
/// their top [`SUB_BITS`] mantissa bits, so every bucket's width is at
/// most ~1.6% of its lower bound. Recording is a handful of relaxed
/// atomic operations; histograms with the same geometry (always true
/// here) can be [`merge`](Histogram::merge)d.
#[derive(Debug)]
pub struct Histogram {
    /// Empty when the histogram is disabled (no memory, no recording).
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(enabled: bool) -> Self {
        let buckets: Box<[AtomicU64]> =
            if enabled { (0..BUCKETS).map(|_| AtomicU64::new(0)).collect() } else { Box::new([]) };
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of `v`.
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let exp = msb - (SUB_BITS - 1);
        let mantissa = (v >> exp) as usize; // in [SUB/2, SUB)
        (exp as usize) * SUB + mantissa
    }

    /// Inclusive `[low, high]` value range of bucket `i`.
    fn bucket_range(i: usize) -> (u64, u64) {
        let exp = (i / SUB) as u32;
        let mantissa = (i % SUB) as u64;
        if exp == 0 {
            (mantissa, mantissa)
        } else {
            let low = mantissa << exp;
            // `(1 << exp) - 1` before the add: the top bucket's high end
            // is exactly `u64::MAX`, so adding the width first overflows.
            (low, low + ((1u64 << exp) - 1))
        }
    }

    /// The inclusive bucket bounds `v` would land in (for tests and
    /// renderers).
    pub fn bounds_of(v: u64) -> (u64, u64) {
        Self::bucket_range(Self::index(v))
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.buckets.is_empty() {
            return;
        }
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the buckets: the
    /// midpoint of the bucket holding the target rank, clamped to the
    /// observed `[min, max]`. Estimates are monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 || self.buckets.is_empty() {
            return 0;
        }
        if q >= 1.0 {
            return self.max(); // exact, not a bucket midpoint
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let (low, high) = Self::bucket_range(i);
                let mid = low + (high - low) / 2;
                return mid.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Fold `other`'s recordings into `self` (bucket-wise addition):
    /// equivalent to having recorded the union of both value streams,
    /// within the bucket precision.
    pub fn merge(&self, other: &Histogram) {
        if self.buckets.is_empty() || other.buckets.is_empty() {
            return;
        }
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        if other.count() > 0 {
            self.count.fetch_add(other.count(), Ordering::Relaxed);
            self.sum.fetch_add(other.sum(), Ordering::Relaxed);
            self.min.fetch_min(other.min(), Ordering::Relaxed);
            self.max.fetch_max(other.max(), Ordering::Relaxed);
        }
    }

    /// Point-in-time summary (count, sum, min/max, p50/p90/p99).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Summary statistics of one histogram at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Name-keyed home of every instrument. Names are hierarchical,
/// dot-separated, lowercase: `<layer>.<operation>.<unit>` — e.g.
/// `client.get.latency_us`, `daemon.served.requests`,
/// `fabric.rpc.retries`, `codec.lz4hc-9.decode_us` (see DESIGN.md §6).
///
/// `counter`/`gauge`/`histogram` are get-or-create and return shared
/// handles; resolve them once and record through the handle.
pub struct MetricsRegistry {
    enabled: bool,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A live registry: instruments record.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A disabled registry: instruments exist (names resolve, exports
    /// work) but every `record`/`add`/`set` is a no-op behind a single
    /// branch, and histograms allocate no buckets.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        MetricsRegistry {
            enabled,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether instruments from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(
            map.entry(name.to_string()).or_insert_with(|| Arc::new(Counter::new(self.enabled))),
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        Arc::clone(
            map.entry(name.to_string()).or_insert_with(|| Arc::new(Gauge::new(self.enabled))),
        )
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(
            map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new(self.enabled))),
        )
    }

    /// Fold every instrument of `other` into `self` (creating missing
    /// ones): counters add, gauges add (they are bytes/message totals
    /// here), histograms merge. Used to aggregate per-rank registries
    /// into one cluster-wide view.
    pub fn merge(&self, other: &MetricsRegistry) {
        for (name, c) in other.counters.lock().iter() {
            self.counter(name).add(c.get());
        }
        for (name, g) in other.gauges.lock().iter() {
            let mine = self.gauge(name);
            mine.set(mine.get() + g.get());
        }
        for (name, h) in other.histograms.lock().iter() {
            self.histogram(name).merge(h);
        }
    }

    /// Point-in-time snapshot of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.lock().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// JSON export of the current state (see [`Snapshot::to_json`]).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Prometheus text-exposition export: counters and gauges as single
    /// samples, histograms as summaries with `quantile` labels plus
    /// `_sum`/`_count`. Dots in names become underscores and every
    /// family is prefixed `fanstore_`.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 9);
            out.push_str("fanstore_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            out
        }
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &snap.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &snap.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

/// A point-in-time copy of a registry's instruments, comparable and
/// subtractable — the unit that `EpochReport` carries per epoch run and
/// the bench reports render.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// The change since `before`: counters and histogram count/sum are
    /// subtracted (instruments absent from `before` keep their value);
    /// gauges and histogram quantiles are point-in-time and keep the
    /// current (cumulative) value.
    pub fn delta(&self, before: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                (k.clone(), v.saturating_sub(before.counters.get(k).copied().unwrap_or(0)))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let b = before.histograms.get(k).copied().unwrap_or_default();
                let mut d = *h;
                d.count = h.count.saturating_sub(b.count);
                d.sum = h.sum.saturating_sub(b.sum);
                (k.clone(), d)
            })
            .collect();
        Snapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serialise as a JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {"name":
    /// {"count": .., "sum": .., "min": .., "max": .., "p50": .., "p90":
    /// .., "p99": ..}, ..}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_map(&mut out, &self.counters, |out, v| out.push_str(&v.to_string()));
        out.push_str("},\"gauges\":{");
        push_map(&mut out, &self.gauges, |out, v| out.push_str(&v.to_string()));
        out.push_str("},\"histograms\":{");
        push_map(&mut out, &self.histograms, |out, h| {
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
            ));
        });
        out.push_str("}}");
        out
    }
}

/// Append `"key":<value>` pairs of a map, JSON-escaping the keys.
fn push_map<V>(out: &mut String, map: &BTreeMap<String, V>, mut fmt: impl FnMut(&mut String, &V)) {
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json::escape(k));
        out.push_str("\":");
        fmt(out, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("client.local.opens");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same instrument.
        assert_eq!(reg.counter("client.local.opens").get(), 5);
        let g = reg.gauge("fabric.bytes_sent");
        g.set(42);
        g.set(17);
        assert_eq!(g.get(), 17);
    }

    #[test]
    fn histogram_buckets_bracket_values() {
        for v in [0u64, 1, 7, 127, 128, 129, 1000, 65_535, 1 << 33, u64::MAX / 3] {
            let (low, high) = Histogram::bounds_of(v);
            assert!(low <= v && v <= high, "{v}: [{low}, {high}]");
            // Precision guarantee: bucket width <= ~1.6% of its floor.
            if low >= SUB as u64 {
                assert!((high - low) as f64 <= low as f64 / 63.0, "{v}: [{low}, {high}]");
            }
        }
    }

    #[test]
    fn histogram_quantiles_and_exact_stats() {
        let h = Histogram::new(true);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((490..=510).contains(&p50), "p50 {p50}");
        assert!((975..=1000).contains(&p99), "p99 {p99}");
        assert!(h.quantile(0.0) <= p50 && p50 <= p99 && p99 <= h.quantile(1.0));
    }

    #[test]
    fn histogram_merge_equals_union() {
        let a = Histogram::new(true);
        let b = Histogram::new(true);
        let union = Histogram::new(true);
        for v in [3u64, 99, 4096, 70_000] {
            a.record(v);
            union.record(v);
        }
        for v in [1u64, 250, 8_000_000] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), union.summary());
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = MetricsRegistry::disabled();
        let c = reg.counter("x");
        let h = reg.histogram("y.latency_us");
        let g = reg.gauge("z");
        c.add(10);
        h.record(99);
        g.set(5);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 0);
        // Exports still work and stay well-formed.
        assert!(json::parse(&reg.to_json()).is_ok());
    }

    #[test]
    fn snapshot_delta_subtracts_counters() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(5);
        reg.histogram("h").record(10);
        let before = reg.snapshot();
        reg.counter("a").add(3);
        reg.counter("b").inc();
        reg.histogram("h").record(20);
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.counter("a"), 3);
        assert_eq!(delta.counter("b"), 1);
        assert_eq!(delta.histograms["h"].count, 1);
        assert_eq!(delta.histograms["h"].sum, 20);
    }

    #[test]
    fn registry_merge_aggregates() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("ops").add(2);
        b.counter("ops").add(3);
        b.counter("only_b").inc();
        a.histogram("lat").record(10);
        b.histogram("lat").record(1000);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("ops"), 5);
        assert_eq!(snap.counter("only_b"), 1);
        assert_eq!(snap.histograms["lat"].count, 2);
        assert_eq!(snap.histograms["lat"].max, 1000);
    }

    #[test]
    fn json_export_parses_and_contains_names() {
        let reg = MetricsRegistry::new();
        reg.counter("client.degraded.reads").add(7);
        reg.histogram("client.get.latency_us").record(120);
        let parsed = json::parse(&reg.to_json()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("client.degraded.reads"))
                .and_then(|v| v.as_u64()),
            Some(7)
        );
        let h = parsed.get("histograms").and_then(|h| h.get("client.get.latency_us")).unwrap();
        assert_eq!(h.get("count").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("client.remote.opens").add(3);
        reg.histogram("client.get.latency_us").record(50);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE fanstore_client_remote_opens counter"));
        assert!(text.contains("fanstore_client_remote_opens 3"));
        assert!(text.contains("fanstore_client_get_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("fanstore_client_get_latency_us_count 1"));
    }

    #[test]
    fn now_us_is_monotone() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
