//! The 144-byte per-file stat block of the pack format (Table I).
//!
//! The paper stores the POSIX `struct stat` (144 bytes on x86_64 glibc)
//! for every file so that intercepted `stat()` calls can be answered from
//! RAM without touching the shared file system, and notes that "extra
//! fields in the file metadata" carry locality information (§IV-C1).
//! We reproduce the field layout of glibc's x86_64 `struct stat` and use
//! one of its three reserved trailing slots for the owner rank.

use crate::FsError;

/// Size of the encoded stat block, matching Table I.
pub const STAT_SIZE: usize = 144;

/// File attributes, mirroring `struct stat` on x86_64 Linux plus
/// FanStore's locality extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// Device id (synthetic: FanStore mount id).
    pub dev: u64,
    /// Inode number (assigned sequentially at pack time).
    pub ino: u64,
    /// Hard-link count (always 1 for packed files).
    pub nlink: u64,
    /// Mode bits: `S_IFREG | 0644` for files, `S_IFDIR | 0755` for dirs.
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Uncompressed file size in bytes.
    pub size: u64,
    /// Preferred I/O block size.
    pub blksize: u64,
    /// 512-byte blocks allocated.
    pub blocks: u64,
    /// Access / modification / status-change times (seconds).
    pub atime: u64,
    /// Modification time (seconds).
    pub mtime: u64,
    /// Status-change time (seconds).
    pub ctime: u64,
    /// FanStore extension (a glibc reserved slot): the rank whose
    /// partition holds this file's compressed bytes.
    pub owner_rank: u32,
    /// FanStore extension (the second reserved slot): the rank that
    /// actually served this stat's GET reply. Stamped by the daemon;
    /// differs from `owner_rank` when a replica answered during failover.
    /// `u32::MAX` = not served over the wire.
    pub served_by: u32,
}

/// `S_IFREG` bit for [`FileStat::mode`].
pub const S_IFREG: u32 = 0o100000;
/// `S_IFDIR` bit for [`FileStat::mode`].
pub const S_IFDIR: u32 = 0o040000;

impl FileStat {
    /// A regular file of `size` bytes.
    pub fn regular(ino: u64, size: u64) -> Self {
        FileStat {
            dev: 0xFA57,
            ino,
            nlink: 1,
            mode: S_IFREG | 0o644,
            uid: 1000,
            gid: 1000,
            size,
            blksize: 4096,
            blocks: size.div_ceil(512),
            atime: 0,
            mtime: 0,
            ctime: 0,
            owner_rank: u32::MAX,
            served_by: u32::MAX,
        }
    }

    /// A directory entry.
    pub fn directory(ino: u64) -> Self {
        FileStat { mode: S_IFDIR | 0o755, size: 4096, ..FileStat::regular(ino, 4096) }
    }

    /// True if this is a directory.
    pub fn is_dir(&self) -> bool {
        self.mode & S_IFDIR != 0
    }

    /// Encode into the 144-byte block (glibc x86_64 field order).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&self.dev.to_le_bytes()); // st_dev
        out.extend_from_slice(&self.ino.to_le_bytes()); // st_ino
        out.extend_from_slice(&self.nlink.to_le_bytes()); // st_nlink
        out.extend_from_slice(&self.mode.to_le_bytes()); // st_mode
        out.extend_from_slice(&self.uid.to_le_bytes()); // st_uid
        out.extend_from_slice(&self.gid.to_le_bytes()); // st_gid
        out.extend_from_slice(&0u32.to_le_bytes()); // __pad0
        out.extend_from_slice(&0u64.to_le_bytes()); // st_rdev
        out.extend_from_slice(&(self.size as i64).to_le_bytes()); // st_size
        out.extend_from_slice(&(self.blksize as i64).to_le_bytes()); // st_blksize
        out.extend_from_slice(&(self.blocks as i64).to_le_bytes()); // st_blocks
        for t in [self.atime, self.mtime, self.ctime] {
            out.extend_from_slice(&(t as i64).to_le_bytes()); // tv_sec
            out.extend_from_slice(&0i64.to_le_bytes()); // tv_nsec
        }
        // glibc reserves three trailing longs; FanStore uses the first for
        // the owner rank (the "extra fields" of §IV-C1) and the second for
        // the serving rank (failover provenance).
        out.extend_from_slice(&u64::from(self.owner_rank).to_le_bytes());
        out.extend_from_slice(&u64::from(self.served_by).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        debug_assert_eq!(out.len() - start, STAT_SIZE);
    }

    /// Decode from a 144-byte block.
    pub fn decode(buf: &[u8]) -> Result<Self, FsError> {
        if buf.len() < STAT_SIZE {
            return Err(FsError::Corrupt("stat block truncated".into()));
        }
        let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().expect("8 bytes"));
        let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().expect("4 bytes"));
        Ok(FileStat {
            dev: u64_at(0),
            ino: u64_at(8),
            nlink: u64_at(16),
            mode: u32_at(24),
            uid: u32_at(28),
            gid: u32_at(32),
            // pad at 36, rdev at 40
            size: u64_at(48),
            blksize: u64_at(56),
            blocks: u64_at(64),
            atime: u64_at(72),
            mtime: u64_at(88),
            ctime: u64_at(104),
            owner_rank: u64_at(120) as u32,
            served_by: u64_at(128) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_size_is_exactly_144() {
        let mut buf = Vec::new();
        FileStat::regular(1, 12345).encode(&mut buf);
        assert_eq!(buf.len(), STAT_SIZE);
    }

    #[test]
    fn roundtrip_regular() {
        let mut s = FileStat::regular(42, 1 << 33);
        s.owner_rank = 511;
        s.served_by = 3;
        s.mtime = 1_700_000_000;
        let mut buf = Vec::new();
        s.encode(&mut buf);
        assert_eq!(FileStat::decode(&buf).unwrap(), s);
    }

    #[test]
    fn roundtrip_directory() {
        let d = FileStat::directory(7);
        assert!(d.is_dir());
        let mut buf = Vec::new();
        d.encode(&mut buf);
        let back = FileStat::decode(&buf).unwrap();
        assert!(back.is_dir());
        assert_eq!(back, d);
    }

    #[test]
    fn blocks_computed_from_size() {
        let s = FileStat::regular(1, 1025);
        assert_eq!(s.blocks, 3); // ceil(1025/512)
    }

    #[test]
    fn truncated_decode_rejected() {
        assert!(FileStat::decode(&[0u8; 100]).is_err());
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let mut buf = Vec::new();
        let s = FileStat::regular(9, 10);
        s.encode(&mut buf);
        buf.extend_from_slice(&[0xAA; 32]);
        assert_eq!(FileStat::decode(&buf).unwrap(), s);
    }
}
