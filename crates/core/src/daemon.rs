//! The FanStore daemon: one service loop per node (paper §V-A, §V-D).
//!
//! The daemon owns the node's receiving endpoint on the service channel
//! and answers three request kinds:
//!
//! * **GET** — remote file retrieval: returns the *compressed* bytes plus
//!   codec and stat; decompression happens on the requesting node (so the
//!   interconnect carries compressed data, §IV-C2).
//! * **GET_MANY** — batched retrieval: up to [`MAX_BATCH`] paths answered
//!   in one reply, each entry framed with its own status byte and CRC32
//!   so a missing or corrupted entry fails alone (see DESIGN.md, "Batched
//!   read protocol").
//! * **PUT_META** — write-metadata insertion: a peer closed an output file
//!   and forwards its metadata to this rank (§V-D).
//! * **SHUTDOWN** — terminate the loop.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use fanstore_compress::crc32::crc32;
use mpi_sim::{Channel, Message};

use crate::meta::encode_single;
use crate::metrics::now_us;
use crate::node::{LocalObject, NodeState};
use crate::qos::QosPolicy;
use crate::stat::{FileStat, STAT_SIZE};
use crate::trace::{Op, SpanEvent, TraceRecorder};
use crate::FsError;

/// Service-channel tags.
pub mod tags {
    /// Terminate the daemon loop.
    pub const SHUTDOWN: u64 = 0;
    /// Fetch a file's compressed bytes.
    pub const GET: u64 = 1;
    /// Insert forwarded write metadata.
    pub const PUT_META: u64 = 2;
    /// Fetch a file's metadata (stat fallback for paths not yet in the
    /// local view).
    pub const GET_META: u64 = 3;
    /// Push a whole object onto this node's write store (checkpoint
    /// replication).
    pub const PUT: u64 = 4;
    /// Remove an output file from this node (checkpoint GC).
    pub const UNLINK: u64 = 5;
    /// Fetch several files' compressed bytes in one round trip (the
    /// batched read path): per-entry status and CRC, so one bad entry
    /// fails alone.
    pub const GET_MANY: u64 = 6;
}

/// Most paths a single GET_MANY request may carry; the client chunks
/// larger per-rank groups into several RPCs under the same batch request
/// id.
pub const MAX_BATCH: usize = 128;

/// Reply status bytes.
pub mod status {
    /// Request served.
    pub const OK: u8 = 0;
    /// Path unknown on this node.
    pub const NOT_FOUND: u8 = 1;
    /// Request malformed.
    pub const BAD_REQUEST: u8 = 2;
    /// Request shed by the daemon's QoS scheduler: its deadline had
    /// expired (or could not cover the estimated service time), or the
    /// tenant's queue was full. The client treats this as retryable and
    /// falls over to the next replica / read-through.
    pub const SHED: u8 = 3;
}

/// Byte offset of the body (codec + stat + compressed) in a GET reply:
/// after the status byte and the CRC32 field.
const GET_BODY: usize = 1 + 4;

/// Encode a PUT request: `[u16 path len][path][u32 owner rank][data]`.
/// The owner rank is recorded in the receiver's metadata so replicated
/// objects keep pointing at their primary.
pub fn encode_put(path: &str, owner: u32, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + path.len() + 4 + data.len());
    out.extend_from_slice(&(path.len() as u16).to_le_bytes());
    out.extend_from_slice(path.as_bytes());
    out.extend_from_slice(&owner.to_le_bytes());
    out.extend_from_slice(data);
    out
}

/// Decode a PUT request into `(path, owner, data)`.
fn decode_put(buf: &[u8]) -> Option<(&str, u32, &[u8])> {
    let plen = u16::from_le_bytes(buf.get(..2)?.try_into().ok()?) as usize;
    let path = std::str::from_utf8(buf.get(2..2 + plen)?).ok()?;
    let owner = u32::from_le_bytes(buf.get(2 + plen..2 + plen + 4)?.try_into().ok()?);
    Some((path, owner, &buf[2 + plen + 4..]))
}

/// Encode a GET reply: `[status][crc32 u32][codec u16][stat 144B]
/// [compressed bytes]`. The CRC covers everything after the CRC field, so
/// a requester can reject in-flight corruption before decompressing.
fn encode_get_reply(obj: &LocalObject) -> Vec<u8> {
    let mut out = Vec::with_capacity(GET_BODY + 2 + STAT_SIZE + obj.data.len());
    encode_get_reply_into(&mut out, obj);
    out
}

/// Append a single-GET reply frame to `out` (the GET_MANY fast path:
/// entries are assembled straight into the outgoing reply buffer instead
/// of through a per-entry `Vec`). The CRC placeholder is patched once the
/// body is in place.
fn encode_get_reply_into(out: &mut Vec<u8>, obj: &LocalObject) {
    let frame = out.len();
    out.push(status::OK);
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder
    out.extend_from_slice(&obj.codec.0.to_le_bytes());
    obj.stat.encode(out);
    out.extend_from_slice(&obj.data);
    let crc = crc32(&out[frame + GET_BODY..]);
    out[frame + 1..frame + GET_BODY].copy_from_slice(&crc.to_le_bytes());
}

/// Decode a GET reply into `(codec, stat, compressed)`, verifying the
/// CRC32. A mismatch decodes to [`FsError::Corrupt`], which the client's
/// failover path treats as retryable on the next replica.
pub fn decode_get_reply(
    buf: &[u8],
) -> Result<(fanstore_compress::CodecId, FileStat, Vec<u8>), FsError> {
    match buf.first() {
        Some(&s) if s == status::OK => {}
        Some(&s) if s == status::NOT_FOUND => {
            return Err(FsError::NotFound("remote: not found".into()))
        }
        Some(&s) if s == status::SHED => return Err(FsError::Shed("remote: shed".into())),
        _ => return Err(FsError::Comm("malformed GET reply".into())),
    }
    if buf.len() < GET_BODY + 2 + STAT_SIZE {
        return Err(FsError::Comm("short GET reply".into()));
    }
    let expect = u32::from_le_bytes(buf[1..GET_BODY].try_into().expect("4 bytes"));
    let actual = crc32(&buf[GET_BODY..]);
    if expect != actual {
        return Err(FsError::Corrupt(format!(
            "GET reply CRC mismatch: stored {expect:08x}, computed {actual:08x}"
        )));
    }
    let codec = fanstore_compress::CodecId(u16::from_le_bytes(
        buf[GET_BODY..GET_BODY + 2].try_into().expect("2 bytes"),
    ));
    let stat = FileStat::decode(&buf[GET_BODY + 2..GET_BODY + 2 + STAT_SIZE])?;
    Ok((codec, stat, buf[GET_BODY + 2 + STAT_SIZE..].to_vec()))
}

/// Encode a GET_MANY request: `[u32 count]` then, per path,
/// `[u16 len][path bytes]`.
pub fn encode_get_many_request(paths: &[&str]) -> Vec<u8> {
    let total: usize = paths.iter().map(|p| 2 + p.len()).sum();
    let mut out = Vec::with_capacity(4 + total);
    out.extend_from_slice(&(paths.len() as u32).to_le_bytes());
    for p in paths {
        out.extend_from_slice(&(p.len() as u16).to_le_bytes());
        out.extend_from_slice(p.as_bytes());
    }
    out
}

/// Decode a GET_MANY request into its path list. `None` on any framing
/// problem (short buffer, non-UTF-8 path, oversized count).
fn decode_get_many_request(buf: &[u8]) -> Option<Vec<&str>> {
    let count = u32::from_le_bytes(buf.get(..4)?.try_into().ok()?) as usize;
    if count > MAX_BATCH {
        return None;
    }
    let mut paths = Vec::with_capacity(count);
    let mut off = 4usize;
    for _ in 0..count {
        let plen = u16::from_le_bytes(buf.get(off..off + 2)?.try_into().ok()?) as usize;
        off += 2;
        paths.push(std::str::from_utf8(buf.get(off..off + plen)?).ok()?);
        off += plen;
    }
    if off == buf.len() {
        Some(paths)
    } else {
        None // trailing garbage: reject rather than silently ignore
    }
}

/// One decoded GET_MANY entry: codec id, stat block and compressed
/// payload, or that entry's own failure.
pub type GetManyEntry = Result<(fanstore_compress::CodecId, FileStat, Vec<u8>), FsError>;

/// Decode a GET_MANY reply. The outer frame is
/// `[status][u32 count]` followed by `count` length-prefixed entries
/// (`[u32 len][single-GET reply]`), in request order. Entries carry their
/// *own* status byte and CRC32 — a byte flipped in flight fails only the
/// entry it landed in, so the caller can fail over per entry instead of
/// refetching the whole batch. Outer-frame damage (or a count mismatch)
/// returns an error for the batch as a whole.
pub fn decode_get_many_reply(buf: &[u8], expected: usize) -> Result<Vec<GetManyEntry>, FsError> {
    match buf.first() {
        Some(&s) if s == status::OK => {}
        Some(&s) if s == status::SHED => return Err(FsError::Shed("remote: batch shed".into())),
        _ => return Err(FsError::Comm("malformed GET_MANY reply".into())),
    }
    let count = u32::from_le_bytes(
        buf.get(1..5)
            .ok_or_else(|| FsError::Comm("short GET_MANY reply".into()))?
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    if count != expected {
        return Err(FsError::Comm(format!(
            "GET_MANY entry count mismatch: asked {expected}, got {count}"
        )));
    }
    let mut out = Vec::with_capacity(count);
    let mut off = 5usize;
    for _ in 0..count {
        let len = u32::from_le_bytes(
            buf.get(off..off + 4)
                .ok_or_else(|| FsError::Comm("truncated GET_MANY frame".into()))?
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        off += 4;
        let entry = buf
            .get(off..off + len)
            .ok_or_else(|| FsError::Comm("truncated GET_MANY entry".into()))?;
        off += len;
        out.push(decode_get_reply(entry));
    }
    Ok(out)
}

fn handle_get_many(state: &NodeState, msg: &Message, get_bytes: &crate::metrics::Counter) -> bool {
    let reply = match decode_get_many_request(&msg.payload) {
        Some(paths) => {
            let mut out = vec![status::OK];
            out.extend_from_slice(&(paths.len() as u32).to_le_bytes());
            for path in paths {
                // Length placeholder, then the entry assembled in place —
                // one buffer for the whole batch reply, no per-entry Vec.
                let len_pos = out.len();
                out.extend_from_slice(&[0u8; 4]);
                match state.get_compressed(path) {
                    Some(mut obj) => {
                        obj.stat.served_by = state.rank as u32;
                        get_bytes.add(obj.data.len() as u64);
                        encode_get_reply_into(&mut out, &obj);
                    }
                    None => out.push(status::NOT_FOUND),
                }
                let n = (out.len() - len_pos - 4) as u32;
                out[len_pos..len_pos + 4].copy_from_slice(&n.to_le_bytes());
            }
            out
        }
        None => vec![status::BAD_REQUEST],
    };
    msg.reply(reply)
}

/// Run the daemon loop until a SHUTDOWN message arrives or every peer
/// endpoint is gone. Returns the number of requests served.
pub fn serve(state: Arc<NodeState>, service: Channel) -> u64 {
    serve_traced(state, service, None)
}

/// [`serve`] with an optional trace recorder: undeliverable replies (the
/// requester gave up — timed out or died) are counted in
/// `stats.reply_failures` and recorded as [`Op::Degraded`] events.
pub fn serve_traced(
    state: Arc<NodeState>,
    service: Channel,
    trace: Option<Arc<TraceRecorder>>,
) -> u64 {
    serve_qos(state, service, trace, None)
}

/// One tenant's service lane in the daemon scheduler: its bounded queue,
/// DRR bookkeeping, and per-tenant instrument handles (resolved once per
/// tenant, recorded through `Arc`s on the hot path).
struct Lane {
    /// `(arrival µs, message)`; the arrival stamp (0 when untimed) turns
    /// into the `daemon.queue` wait span at dispatch.
    queue: VecDeque<(u64, Message)>,
    weight: u64,
    deficit: u64,
    served: Arc<crate::metrics::Counter>,
    shed: Arc<crate::metrics::Counter>,
    depth: Arc<crate::metrics::Gauge>,
}

/// Per-tenant bounded queues drained by deficit round-robin. Without a
/// policy every message lands in tenant 0's unbounded lane and the drain
/// order is exactly arrival order — the pre-QoS FIFO, bit for bit.
struct Scheduler<'a> {
    state: &'a NodeState,
    policy: Option<&'a QosPolicy>,
    lanes: BTreeMap<u32, Lane>,
    /// Active tenants in visit order; the front lane holds the current
    /// deficit.
    rr: VecDeque<u32>,
    queued: usize,
    /// Whether to stamp arrivals for queue-wait attribution.
    timed: bool,
}

impl<'a> Scheduler<'a> {
    fn new(state: &'a NodeState, policy: Option<&'a QosPolicy>, timed: bool) -> Self {
        Scheduler { state, policy, lanes: BTreeMap::new(), rr: VecDeque::new(), queued: 0, timed }
    }

    fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Queue one arriving message on its tenant's lane; a full lane sheds
    /// it immediately (SHUTDOWN is never shed).
    fn enqueue(&mut self, msg: Message) {
        let tenant = msg.tenant;
        let lane = self.lanes.entry(tenant).or_insert_with(|| {
            let m = &self.state.metrics;
            Lane {
                queue: VecDeque::new(),
                weight: self.policy.map_or(1, |p| p.weight(tenant)),
                deficit: 0,
                served: m.counter(&format!("qos.tenant.{tenant}.served")),
                shed: m.counter(&format!("qos.tenant.{tenant}.shed")),
                depth: m.gauge(&format!("qos.tenant.{tenant}.queue_depth")),
            }
        });
        let depth = self.policy.map_or(0, |p| p.queue_depth);
        if depth > 0 && lane.queue.len() >= depth && msg.tag != tags::SHUTDOWN {
            // Count before replying: the requester may act on the SHED
            // reply immediately, and must find the counters consistent.
            lane.shed.inc();
            self.state.stats.daemon_shed.inc();
            msg.reply(vec![status::SHED]);
            return;
        }
        if lane.queue.is_empty() {
            self.rr.push_back(tenant);
        }
        let arrival = if self.timed { now_us() } else { 0 };
        lane.queue.push_back((arrival, msg));
        lane.depth.set(lane.queue.len() as u64);
        self.queued += 1;
    }

    /// Pop the next message under DRR: the front tenant receives its
    /// weight as quantum on arrival at the head and serves one request
    /// per unit of deficit; spending it (or draining the lane) rotates
    /// the tenant to the back of the round.
    fn next(&mut self) -> Option<(u32, u64, Message)> {
        while let Some(&tenant) = self.rr.front() {
            let lane = self.lanes.get_mut(&tenant).expect("active lane exists");
            if lane.queue.is_empty() {
                lane.deficit = 0;
                self.rr.pop_front();
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = lane.weight.max(1);
            }
            let (arrival, msg) = lane.queue.pop_front().expect("lane non-empty");
            lane.deficit -= 1;
            lane.depth.set(lane.queue.len() as u64);
            self.queued -= 1;
            let drained = lane.queue.is_empty();
            if lane.deficit == 0 || drained {
                lane.deficit = 0;
                self.rr.pop_front();
                if !drained {
                    self.rr.push_back(tenant);
                }
            }
            return Some((tenant, arrival, msg));
        }
        None
    }

    /// Count a dispatched request against its tenant.
    fn count_served(&self, tenant: u32) {
        if let Some(lane) = self.lanes.get(&tenant) {
            lane.served.inc();
        }
    }

    /// Count a shed request against its tenant (and the node total).
    fn count_shed(&self, tenant: u32) {
        if let Some(lane) = self.lanes.get(&tenant) {
            lane.shed.inc();
        }
        self.state.stats.daemon_shed.inc();
    }
}

/// How many dispatches between refreshes of the cached service-time
/// estimate (the `daemon.serve.latency_us` median).
const EST_REFRESH: u64 = 64;

/// [`serve_traced`] under an optional [`QosPolicy`]: arriving requests
/// queue per tenant (bounded; overflow is shed), the queues drain by
/// deficit round-robin instead of strict FIFO, and any request whose
/// deadline has expired — or whose remaining budget cannot cover the
/// estimated service time (the serve-latency median) — is answered with
/// [`status::SHED`] instead of being served. With `policy` `None` the
/// behaviour is exactly the historical FIFO loop.
pub fn serve_qos(
    state: Arc<NodeState>,
    mut service: Channel,
    trace: Option<Arc<TraceRecorder>>,
    policy: Option<Arc<QosPolicy>>,
) -> u64 {
    // Resolve instrument handles once; the loop records through Arcs.
    let serve_latency = state.metrics.histogram("daemon.serve.latency_us");
    let queue_wait = state.metrics.histogram("daemon.queue.wait_us");
    let get_bytes = state.metrics.counter("daemon.get.bytes");
    let timed = state.metrics.is_enabled() || trace.is_some();
    let mut sched = Scheduler::new(&state, policy.as_deref(), timed);
    let mut served = 0u64;
    // Cached estimate of one request's service time, used by the shed
    // decision; refreshed from the latency histogram every EST_REFRESH
    // dispatches (0 until the histogram has data).
    let mut est_serve_us = 0u64;
    'daemon: loop {
        // Admission: block only when nothing is queued, then drain every
        // message already waiting so the scheduler sees all tenants
        // before picking.
        if sched.is_empty() {
            match service.recv() {
                Ok(m) => sched.enqueue(m),
                Err(_) => break, // all peers disconnected
            }
        }
        while let Some(m) = service.try_recv() {
            sched.enqueue(m);
        }
        let Some((tenant, arrival_us, msg)) = sched.next() else { continue };
        // Queue wait: arrival → dispatch, charged to the request whether
        // it is served or shed below (the requester waited either way).
        if timed && arrival_us != 0 && msg.tag != tags::SHUTDOWN {
            let wait = now_us().saturating_sub(arrival_us);
            queue_wait.record_with_exemplar(wait, msg.request_id);
            if let Some(t) = &trace {
                t.record_span(SpanEvent {
                    request: msg.request_id,
                    rank: state.rank as u32,
                    stage: "daemon.queue".to_string(),
                    start_us: arrival_us,
                    dur_us: wait,
                });
            }
        }
        // Deadline shed: the requester stamped an absolute deadline on
        // the shared monotonic clock. If it already passed — or the
        // remaining budget can't cover the estimated service time — the
        // requester would discard the reply anyway; answer SHED instead
        // of burning the decode.
        if msg.deadline_us != 0 && msg.tag != tags::SHUTDOWN {
            let now = now_us();
            if now >= msg.deadline_us || msg.deadline_us - now < est_serve_us {
                sched.count_shed(tenant); // count first: see `enqueue`
                msg.reply(vec![status::SHED]);
                continue;
            }
        }
        served += 1;
        sched.count_served(tenant);
        let start = if timed { now_us() } else { 0 };
        let shutdown = msg.tag == tags::SHUTDOWN;
        let delivered = match msg.tag {
            tags::SHUTDOWN => msg.reply(vec![status::OK]),
            tags::GET => handle_get(&state, &msg, &get_bytes),
            tags::GET_MANY => handle_get_many(&state, &msg, &get_bytes),
            tags::GET_META => handle_get_meta(&state, &msg),
            tags::PUT_META => {
                let ok = state.merge_meta(&msg.payload).is_ok();
                msg.reply(vec![if ok { status::OK } else { status::BAD_REQUEST }])
            }
            tags::PUT => handle_put(&state, &msg),
            tags::UNLINK => handle_unlink(&state, &msg),
            _ => msg.reply(vec![status::BAD_REQUEST]),
        };
        if timed && !shutdown {
            serve_latency.record_with_exemplar(now_us().saturating_sub(start), msg.request_id);
            if served.is_multiple_of(EST_REFRESH) {
                est_serve_us = serve_latency.quantile(0.5);
            }
            // The requester minted the id; stamping it here lets a span
            // tree reassemble the server leg of the request.
            if let Some(t) = &trace {
                t.record_span(SpanEvent {
                    request: msg.request_id,
                    rank: state.rank as u32,
                    stage: "daemon.serve".to_string(),
                    start_us: start,
                    dur_us: now_us().saturating_sub(start),
                });
                // Writes get their own stage so `fanstore attrib` can
                // attribute write latency separately from read serving.
                if msg.tag == tags::PUT {
                    t.record_span(SpanEvent {
                        request: msg.request_id,
                        rank: state.rank as u32,
                        stage: "daemon.write_serve".to_string(),
                        start_us: start,
                        dur_us: now_us().saturating_sub(start),
                    });
                }
            }
        }
        if !delivered {
            state.stats.reply_failures.inc();
            if let Some(t) = &trace {
                t.record(Op::Degraded, "daemon:reply-drop", 0);
            }
        }
        if shutdown {
            break 'daemon;
        }
    }
    served
}

fn handle_get(state: &NodeState, msg: &Message, get_bytes: &crate::metrics::Counter) -> bool {
    let reply = match std::str::from_utf8(&msg.payload) {
        Ok(path) => match state.get_compressed(path) {
            Some(mut obj) => {
                // Failover provenance: stamp which rank actually served
                // the bytes (differs from `owner_rank` on a replica).
                obj.stat.served_by = state.rank as u32;
                get_bytes.add(obj.data.len() as u64);
                encode_get_reply(&obj)
            }
            None => vec![status::NOT_FOUND],
        },
        Err(_) => vec![status::BAD_REQUEST],
    };
    msg.reply(reply)
}

fn handle_put(state: &NodeState, msg: &Message) -> bool {
    let reply = match decode_put(&msg.payload) {
        // OK only once the write is durable: put_replica lands it in
        // the WAL (when one is attached) before returning, so a commit
        // failure must surface as a rejection, never an ACK.
        Some((path, owner, data)) => match state.put_replica(path, owner, data.to_vec()) {
            Ok(()) => vec![status::OK],
            Err(_) => vec![status::BAD_REQUEST],
        },
        None => vec![status::BAD_REQUEST],
    };
    msg.reply(reply)
}

fn handle_unlink(state: &NodeState, msg: &Message) -> bool {
    let reply = match std::str::from_utf8(&msg.payload) {
        Ok(path) => match state.remove_write(path) {
            Ok(true) => vec![status::OK],
            Ok(false) => vec![status::NOT_FOUND],
            Err(_) => vec![status::BAD_REQUEST], // input files are immutable
        },
        Err(_) => vec![status::BAD_REQUEST],
    };
    msg.reply(reply)
}

fn handle_get_meta(state: &NodeState, msg: &Message) -> bool {
    let reply = match std::str::from_utf8(&msg.payload) {
        Ok(path) => match state.meta.read().get(path) {
            Some(entry) => {
                let mut out = vec![status::OK];
                out.extend_from_slice(&encode_single(path, entry));
                out
            }
            None => vec![status::NOT_FOUND],
        },
        Err(_) => vec![status::BAD_REQUEST],
    };
    msg.reply(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::node::decompress_object;
    use crate::prep::{prepare, PrepConfig};

    #[test]
    fn get_reply_roundtrip() {
        let packed = prepare(
            vec![("f.bin".to_string(), b"hello hello hello hello".repeat(10))],
            &PrepConfig::default(),
        );
        let state = NodeState::new(0, 1, CacheConfig::default());
        state.load_partition(&packed.partitions[0]).unwrap();
        let obj = state.get_compressed("f.bin").unwrap();
        let buf = encode_get_reply(&obj);
        let (codec, stat, data) = decode_get_reply(&buf).unwrap();
        assert_eq!(codec, obj.codec);
        assert_eq!(stat.size, obj.stat.size);
        let plain = decompress_object(codec, &data, stat.size as usize, "f.bin").unwrap();
        assert_eq!(plain, b"hello hello hello hello".repeat(10));
    }

    #[test]
    fn not_found_reply_decodes_to_error() {
        assert!(matches!(decode_get_reply(&[status::NOT_FOUND]), Err(FsError::NotFound(_))));
        assert!(decode_get_reply(&[]).is_err());
        assert!(decode_get_reply(&[status::OK, 1]).is_err());
    }

    #[test]
    fn get_many_roundtrip_with_per_entry_status() {
        let packed = prepare(
            vec![
                ("g/a.bin".to_string(), b"aaaa".repeat(64)),
                ("g/b.bin".to_string(), b"bbbb".repeat(64)),
            ],
            &PrepConfig::default(),
        );
        let parts = packed.partitions;
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                state.load_partition(&parts[0]).unwrap();
                serve(state, service)
            } else {
                let req = encode_get_many_request(&["g/a.bin", "missing", "g/b.bin"]);
                let reply = service.rpc(0, tags::GET_MANY, req).unwrap();
                let entries = decode_get_many_reply(&reply, 3).unwrap();
                assert_eq!(entries.len(), 3);
                let (codec, stat, data) = entries[0].as_ref().unwrap().clone();
                assert_eq!(stat.served_by, 0);
                let plain = decompress_object(codec, &data, stat.size as usize, "g/a.bin").unwrap();
                assert_eq!(plain, b"aaaa".repeat(64));
                assert!(
                    matches!(entries[1], Err(FsError::NotFound(_))),
                    "missing entry fails alone"
                );
                assert!(entries[2].is_ok(), "entry after the miss still served");
                // A count mismatch is a batch-level framing error.
                assert!(decode_get_many_reply(&reply, 2).is_err());
                // A malformed request gets BAD_REQUEST, not a crash.
                let r = service.rpc(0, tags::GET_MANY, vec![1, 0, 0]).unwrap();
                assert_eq!(r, vec![status::BAD_REQUEST]);
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                3
            }
        });
        assert_eq!(results[0], 3);
    }

    #[test]
    fn get_many_corruption_fails_only_the_hit_entry() {
        // Build a 3-entry reply by hand, flip one byte inside the middle
        // entry's payload: decode must keep entries 0 and 2 intact and
        // report entry 1 as Corrupt — the per-entry-CRC guarantee the
        // batched failover path relies on.
        let packed = prepare(
            vec![
                ("m/a.bin".to_string(), b"entry-a ".repeat(40)),
                ("m/b.bin".to_string(), b"entry-b ".repeat(40)),
                ("m/c.bin".to_string(), b"entry-c ".repeat(40)),
            ],
            &PrepConfig::default(),
        );
        let state = NodeState::new(0, 1, CacheConfig::default());
        state.load_partition(&packed.partitions[0]).unwrap();
        let mut reply = vec![status::OK];
        reply.extend_from_slice(&3u32.to_le_bytes());
        let mut entry_starts = Vec::new();
        for p in ["m/a.bin", "m/b.bin", "m/c.bin"] {
            let entry = encode_get_reply(&state.get_compressed(p).unwrap());
            reply.extend_from_slice(&(entry.len() as u32).to_le_bytes());
            entry_starts.push(reply.len());
            reply.extend_from_slice(&entry);
        }
        let mid = entry_starts[1] + GET_BODY + 20; // inside entry 1's body
        reply[mid] ^= 0x10;
        let entries = decode_get_many_reply(&reply, 3).unwrap();
        assert!(entries[0].is_ok(), "entry before the flip survives");
        assert!(matches!(entries[1], Err(FsError::Corrupt(_))), "hit entry rejected by its CRC");
        assert!(entries[2].is_ok(), "entry after the flip survives");
        let (codec, stat, data) = entries[2].as_ref().unwrap().clone();
        let plain = decompress_object(codec, &data, stat.size as usize, "m/c.bin").unwrap();
        assert_eq!(plain, b"entry-c ".repeat(40));
    }

    #[test]
    fn get_many_request_roundtrip_and_limits() {
        let paths = vec!["a", "some/deep/path.bin", ""];
        let buf = encode_get_many_request(&paths);
        assert_eq!(decode_get_many_request(&buf).unwrap(), paths);
        // Trailing garbage rejected.
        let mut noisy = buf.clone();
        noisy.push(0);
        assert!(decode_get_many_request(&noisy).is_none());
        // Oversized counts rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_BATCH as u32 + 1).to_le_bytes());
        assert!(decode_get_many_request(&huge).is_none());
    }

    #[test]
    fn daemon_serves_get_and_shutdown_over_channels() {
        let packed = prepare(
            vec![("d/file.bin".to_string(), b"payload payload payload".repeat(8))],
            &PrepConfig::default(),
        );
        let parts = packed.partitions;
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                state.load_partition(&parts[0]).unwrap();
                serve(state, service)
            } else {
                let reply = service.rpc(0, tags::GET, b"d/file.bin".to_vec()).unwrap();
                let (codec, stat, data) = decode_get_reply(&reply).unwrap();
                assert_eq!(stat.served_by, 0, "daemon stamps the serving rank");
                let plain =
                    decompress_object(codec, &data, stat.size as usize, "d/file.bin").unwrap();
                assert_eq!(plain, b"payload payload payload".repeat(8));
                // Unknown path.
                let nf = service.rpc(0, tags::GET, b"missing".to_vec()).unwrap();
                assert_eq!(nf[0], status::NOT_FOUND);
                // Shut the daemon down.
                let ok = service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                assert_eq!(ok[0], status::OK);
                3
            }
        });
        assert_eq!(results[0], 3, "daemon served 3 requests");
    }

    #[test]
    fn corrupted_reply_rejected_by_crc() {
        let packed =
            prepare(vec![("f.bin".to_string(), b"abcdefgh".repeat(64))], &PrepConfig::default());
        let state = NodeState::new(0, 1, CacheConfig::default());
        state.load_partition(&packed.partitions[0]).unwrap();
        let obj = state.get_compressed("f.bin").unwrap();
        let good = encode_get_reply(&obj);
        // Flip one payload byte: decode must reject via CRC, not panic or
        // hand back corrupt bytes.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(decode_get_reply(&bad), Err(FsError::Corrupt(_))));
        // Flip a stat byte too — also covered by the CRC.
        let mut bad_stat = good.clone();
        bad_stat[GET_BODY + 10] ^= 0x01;
        assert!(matches!(decode_get_reply(&bad_stat), Err(FsError::Corrupt(_))));
        assert!(decode_get_reply(&good).is_ok());
    }

    #[test]
    fn bad_request_paths_reply_bad_request() {
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                serve(state, service)
            } else {
                // GET with a non-UTF-8 path.
                let r = service.rpc(0, tags::GET, vec![0xFF, 0xFE, 0x00]).unwrap();
                assert_eq!(r, vec![status::BAD_REQUEST]);
                // GET_META with a non-UTF-8 path.
                let r = service.rpc(0, tags::GET_META, vec![0x80]).unwrap();
                assert_eq!(r, vec![status::BAD_REQUEST]);
                // GET_META for an unknown path.
                let r = service.rpc(0, tags::GET_META, b"nope".to_vec()).unwrap();
                assert_eq!(r, vec![status::NOT_FOUND]);
                // PUT_META with garbage metadata.
                let r = service.rpc(0, tags::PUT_META, vec![9; 3]).unwrap();
                assert_eq!(r, vec![status::BAD_REQUEST]);
                // Unknown tag.
                let r = service.rpc(0, 777, Vec::new()).unwrap();
                assert_eq!(r, vec![status::BAD_REQUEST]);
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                6
            }
        });
        assert_eq!(results[0], 6, "daemon stayed up through every bad request");
    }

    #[test]
    fn undeliverable_reply_counted() {
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                let trace = Arc::new(crate::trace::TraceRecorder::new(8));
                let st = Arc::clone(&state);
                let served = serve_traced(st, service, Some(Arc::clone(&trace)));
                (served, state.stats.reply_failures.get(), trace.count(Op::Degraded))
            } else {
                // A bare send carries no reply conduit: the daemon's
                // answer is undeliverable and must be counted, not lost
                // silently.
                service.send(0, tags::GET, b"whatever".to_vec()).unwrap();
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                (0, 0, 0)
            }
        });
        assert_eq!(results[0], (2, 1, 1));
    }

    #[test]
    fn put_then_unlink_roundtrip() {
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                let st = Arc::clone(&state);
                let served = serve(st, service);
                let still_there = state.writes.read().contains_key("ckpt/seg0");
                (served, still_there)
            } else {
                let buf = encode_put("ckpt/seg0", 1, &[0xAB; 128]);
                let ok = service.rpc(0, tags::PUT, buf).unwrap();
                assert_eq!(ok[0], status::OK);
                // The replica now serves GETs for the pushed object.
                let reply = service.rpc(0, tags::GET, b"ckpt/seg0".to_vec()).unwrap();
                let (codec, stat, data) = decode_get_reply(&reply).unwrap();
                assert_eq!(stat.owner_rank, 1, "owner stays the pusher");
                let plain =
                    decompress_object(codec, &data, stat.size as usize, "ckpt/seg0").unwrap();
                assert_eq!(plain, vec![0xABu8; 128]);
                // Unlink removes it; a second unlink reports NOT_FOUND.
                let r = service.rpc(0, tags::UNLINK, b"ckpt/seg0".to_vec()).unwrap();
                assert_eq!(r[0], status::OK);
                let r = service.rpc(0, tags::UNLINK, b"ckpt/seg0".to_vec()).unwrap();
                assert_eq!(r[0], status::NOT_FOUND);
                // Truncated PUT payloads are rejected, not panicked on.
                let r = service.rpc(0, tags::PUT, vec![0xFF, 0xFF, 0x01]).unwrap();
                assert_eq!(r[0], status::BAD_REQUEST);
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                (0, false)
            }
        });
        assert_eq!(results[0], (6, false), "object gone after unlink");
    }

    #[test]
    fn put_meta_insertion() {
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                let st = Arc::clone(&state);
                let served = serve(st, service);
                let size = state.meta.read().stat("out/model_epoch3.h5").map(|s| s.size);
                (served, size)
            } else {
                let entry = crate::meta::MetaEntry {
                    stat: {
                        let mut s = FileStat::regular(0, 4242);
                        s.owner_rank = 1;
                        s
                    },
                    codec: fanstore_compress::CodecId(0),
                };
                let buf = encode_single("out/model_epoch3.h5", &entry);
                let ok = service.rpc(0, tags::PUT_META, buf).unwrap();
                assert_eq!(ok[0], status::OK);
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                (0, None)
            }
        });
        assert_eq!(results[0], (2, Some(4242)));
    }
}
