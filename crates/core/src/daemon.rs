//! The FanStore daemon: one service loop per node (paper §V-A, §V-D).
//!
//! The daemon owns the node's receiving endpoint on the service channel
//! and answers three request kinds:
//!
//! * **GET** — remote file retrieval: returns the *compressed* bytes plus
//!   codec and stat; decompression happens on the requesting node (so the
//!   interconnect carries compressed data, §IV-C2).
//! * **GET_MANY** — batched retrieval: up to [`MAX_BATCH`] paths answered
//!   in one reply, each entry framed with its own status byte and CRC32
//!   so a missing or corrupted entry fails alone (see DESIGN.md, "Batched
//!   read protocol").
//! * **PUT_META** — write-metadata insertion: a peer closed an output file
//!   and forwards its metadata to this rank (§V-D).
//! * **SHUTDOWN** — terminate the loop.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use fanstore_compress::crc32::crc32;
use mpi_sim::{Channel, Message};

use crate::meta::encode_single;
use crate::metrics::now_us;
use crate::node::{LocalObject, NodeState};
use crate::qos::QosPolicy;
use crate::stat::{FileStat, STAT_SIZE};
use crate::trace::{Op, SpanEvent, TraceRecorder};
use crate::FsError;

/// Service-channel tags.
pub mod tags {
    /// Terminate the daemon loop.
    pub const SHUTDOWN: u64 = 0;
    /// Fetch a file's compressed bytes.
    pub const GET: u64 = 1;
    /// Insert forwarded write metadata.
    pub const PUT_META: u64 = 2;
    /// Fetch a file's metadata (stat fallback for paths not yet in the
    /// local view).
    pub const GET_META: u64 = 3;
    /// Push a whole object onto this node's write store (checkpoint
    /// replication).
    pub const PUT: u64 = 4;
    /// Remove an output file from this node (checkpoint GC).
    pub const UNLINK: u64 = 5;
    /// Fetch several files' compressed bytes in one round trip (the
    /// batched read path): per-entry status and CRC, so one bad entry
    /// fails alone.
    pub const GET_MANY: u64 = 6;
}

/// Most paths a single GET_MANY request may carry; the client chunks
/// larger per-rank groups into several RPCs under the same batch request
/// id.
pub const MAX_BATCH: usize = 128;

/// Reply status bytes.
pub mod status {
    /// Request served.
    pub const OK: u8 = 0;
    /// Path unknown on this node.
    pub const NOT_FOUND: u8 = 1;
    /// Request malformed.
    pub const BAD_REQUEST: u8 = 2;
    /// Request shed by the daemon's QoS scheduler: its deadline had
    /// expired (or could not cover the estimated service time), or the
    /// tenant's queue was full. The client treats this as retryable and
    /// falls over to the next replica / read-through.
    pub const SHED: u8 = 3;
    /// Entry served as a *partial* frame: only the chunks covering the
    /// requested byte range (or the fidelity tiers up to `min_tier`) of
    /// a chunked object, each with its own stored-CRC.
    pub const PARTIAL: u8 = 4;
    /// This node failed to serve the entry (e.g. its local copy's chunk
    /// table or payload is corrupt). Unlike [`BAD_REQUEST`] this says
    /// nothing about the request itself, so the client treats it as
    /// retryable and walks the replica ring, where an intact copy may
    /// survive.
    pub const ERROR: u8 = 5;
}

/// Byte offset of the body (codec + stat + compressed) in a GET reply:
/// after the status byte and the CRC32 field.
const GET_BODY: usize = 1 + 4;

/// Encode a PUT request: `[u16 path len][path][u32 owner rank][data]`.
/// The owner rank is recorded in the receiver's metadata so replicated
/// objects keep pointing at their primary.
pub fn encode_put(path: &str, owner: u32, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + path.len() + 4 + data.len());
    out.extend_from_slice(&(path.len() as u16).to_le_bytes());
    out.extend_from_slice(path.as_bytes());
    out.extend_from_slice(&owner.to_le_bytes());
    out.extend_from_slice(data);
    out
}

/// Decode a PUT request into `(path, owner, data)`.
fn decode_put(buf: &[u8]) -> Option<(&str, u32, &[u8])> {
    let plen = u16::from_le_bytes(buf.get(..2)?.try_into().ok()?) as usize;
    let path = std::str::from_utf8(buf.get(2..2 + plen)?).ok()?;
    let owner = u32::from_le_bytes(buf.get(2 + plen..2 + plen + 4)?.try_into().ok()?);
    Some((path, owner, &buf[2 + plen + 4..]))
}

/// Encode a GET reply: `[status][crc32 u32][codec u16][stat 144B]
/// [compressed bytes]`. The CRC covers everything after the CRC field, so
/// a requester can reject in-flight corruption before decompressing.
fn encode_get_reply(obj: &LocalObject) -> Vec<u8> {
    let mut out = Vec::with_capacity(GET_BODY + 2 + STAT_SIZE + obj.data.len());
    encode_get_reply_into(&mut out, obj);
    out
}

/// Append a single-GET reply frame to `out` (the GET_MANY fast path:
/// entries are assembled straight into the outgoing reply buffer instead
/// of through a per-entry `Vec`). The CRC placeholder is patched once the
/// body is in place.
fn encode_get_reply_into(out: &mut Vec<u8>, obj: &LocalObject) {
    let frame = out.len();
    out.push(status::OK);
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder
    out.extend_from_slice(&obj.codec.0.to_le_bytes());
    obj.stat.encode(out);
    out.extend_from_slice(&obj.data);
    let crc = crc32(&out[frame + GET_BODY..]);
    out[frame + 1..frame + GET_BODY].copy_from_slice(&crc.to_le_bytes());
}

/// Decode a GET reply into `(codec, stat, compressed)`, verifying the
/// CRC32. A mismatch decodes to [`FsError::Corrupt`], which the client's
/// failover path treats as retryable on the next replica.
pub fn decode_get_reply(
    buf: &[u8],
) -> Result<(fanstore_compress::CodecId, FileStat, Vec<u8>), FsError> {
    match buf.first() {
        Some(&s) if s == status::OK => {}
        Some(&s) if s == status::NOT_FOUND => {
            return Err(FsError::NotFound("remote: not found".into()))
        }
        Some(&s) if s == status::SHED => return Err(FsError::Shed("remote: shed".into())),
        _ => return Err(FsError::Comm("malformed GET reply".into())),
    }
    if buf.len() < GET_BODY + 2 + STAT_SIZE {
        return Err(FsError::Comm("short GET reply".into()));
    }
    let expect = u32::from_le_bytes(buf[1..GET_BODY].try_into().expect("4 bytes"));
    let actual = crc32(&buf[GET_BODY..]);
    if expect != actual {
        return Err(FsError::Corrupt(format!(
            "GET reply CRC mismatch: stored {expect:08x}, computed {actual:08x}"
        )));
    }
    let codec = fanstore_compress::CodecId(u16::from_le_bytes(
        buf[GET_BODY..GET_BODY + 2].try_into().expect("2 bytes"),
    ));
    let stat = FileStat::decode(&buf[GET_BODY + 2..GET_BODY + 2 + STAT_SIZE])?;
    Ok((codec, stat, buf[GET_BODY + 2 + STAT_SIZE..].to_vec()))
}

/// Count-field flag marking a version-2 GET_MANY request (per-entry
/// range and fidelity fields follow each path). v1 decoders reject the
/// oversized count; v1 requests decode unchanged under v2 daemons.
const GET_MANY_V2: u32 = 0x8000_0000;

/// One entry of a GET_MANY request: the path, an optional byte range
/// `[start, end)` and a fidelity bound (`min_tier`;
/// [`crate::pack::TIER_FULL`] means every tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetManySpec<'a> {
    /// File path.
    pub path: &'a str,
    /// Byte range `[start, end)` to serve, or `None` for the whole file.
    pub range: Option<(u64, u64)>,
    /// Highest fidelity tier the requester wants shipped.
    pub min_tier: u8,
}

impl<'a> GetManySpec<'a> {
    /// A whole-file, full-fidelity entry (the v1 semantics).
    pub fn whole(path: &'a str) -> Self {
        GetManySpec { path, range: None, min_tier: crate::pack::TIER_FULL }
    }

    /// A byte-range entry.
    pub fn range(path: &'a str, start: u64, end: u64) -> Self {
        GetManySpec { path, range: Some((start, end)), min_tier: crate::pack::TIER_FULL }
    }

    /// A fidelity-bounded whole-file entry.
    pub fn tiered(path: &'a str, min_tier: u8) -> Self {
        GetManySpec { path, range: None, min_tier }
    }
}

/// Encode a GET_MANY request: `[u32 count]` then, per path,
/// `[u16 len][path bytes]`.
pub fn encode_get_many_request(paths: &[&str]) -> Vec<u8> {
    let total: usize = paths.iter().map(|p| 2 + p.len()).sum();
    let mut out = Vec::with_capacity(4 + total);
    out.extend_from_slice(&(paths.len() as u32).to_le_bytes());
    for p in paths {
        out.extend_from_slice(&(p.len() as u16).to_le_bytes());
        out.extend_from_slice(p.as_bytes());
    }
    out
}

/// Encode a v2 GET_MANY request: `[u32 count | GET_MANY_V2]` then, per
/// entry, `[u16 len][path][u8 flags]` followed by `[u64 start][u64 end]`
/// when flag bit 0 is set and `[u8 min_tier]` when flag bit 1 is set.
pub fn encode_get_many_request_v2(specs: &[GetManySpec]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + specs.len() * 24);
    out.extend_from_slice(&((specs.len() as u32) | GET_MANY_V2).to_le_bytes());
    for s in specs {
        out.extend_from_slice(&(s.path.len() as u16).to_le_bytes());
        out.extend_from_slice(s.path.as_bytes());
        let mut flags = 0u8;
        if s.range.is_some() {
            flags |= 1;
        }
        if s.min_tier != crate::pack::TIER_FULL {
            flags |= 2;
        }
        out.push(flags);
        if let Some((start, end)) = s.range {
            out.extend_from_slice(&start.to_le_bytes());
            out.extend_from_slice(&end.to_le_bytes());
        }
        if s.min_tier != crate::pack::TIER_FULL {
            out.push(s.min_tier);
        }
    }
    out
}

/// Decode a GET_MANY request (v1 or v2) into its entry list. `None` on
/// any framing problem (short buffer, non-UTF-8 path, oversized count).
fn decode_get_many_request(buf: &[u8]) -> Option<Vec<GetManySpec<'_>>> {
    let raw = u32::from_le_bytes(buf.get(..4)?.try_into().ok()?);
    let v2 = raw & GET_MANY_V2 != 0;
    let count = (raw & !GET_MANY_V2) as usize;
    if count > MAX_BATCH {
        return None;
    }
    let mut specs = Vec::with_capacity(count);
    let mut off = 4usize;
    for _ in 0..count {
        let plen = u16::from_le_bytes(buf.get(off..off + 2)?.try_into().ok()?) as usize;
        off += 2;
        let path = std::str::from_utf8(buf.get(off..off + plen)?).ok()?;
        off += plen;
        let mut spec = GetManySpec::whole(path);
        if v2 {
            let flags = *buf.get(off)?;
            off += 1;
            if flags & !3 != 0 {
                return None;
            }
            if flags & 1 != 0 {
                let start = u64::from_le_bytes(buf.get(off..off + 8)?.try_into().ok()?);
                let end = u64::from_le_bytes(buf.get(off + 8..off + 16)?.try_into().ok()?);
                off += 16;
                spec.range = Some((start, end));
            }
            if flags & 2 != 0 {
                spec.min_tier = *buf.get(off)?;
                off += 1;
            }
        }
        specs.push(spec);
    }
    if off == buf.len() {
        Some(specs)
    } else {
        None // trailing garbage: reject rather than silently ignore
    }
}

/// One decoded GET_MANY entry: codec id, stat block and compressed
/// payload, or that entry's own failure.
pub type GetManyEntry = Result<(fanstore_compress::CodecId, FileStat, Vec<u8>), FsError>;

/// Decode a GET_MANY reply. The outer frame is
/// `[status][u32 count]` followed by `count` length-prefixed entries
/// (`[u32 len][single-GET reply]`), in request order. Entries carry their
/// *own* status byte and CRC32 — a byte flipped in flight fails only the
/// entry it landed in, so the caller can fail over per entry instead of
/// refetching the whole batch. Outer-frame damage (or a count mismatch)
/// returns an error for the batch as a whole.
pub fn decode_get_many_reply(buf: &[u8], expected: usize) -> Result<Vec<GetManyEntry>, FsError> {
    match buf.first() {
        Some(&s) if s == status::OK => {}
        Some(&s) if s == status::SHED => return Err(FsError::Shed("remote: batch shed".into())),
        _ => return Err(FsError::Comm("malformed GET_MANY reply".into())),
    }
    let count = u32::from_le_bytes(
        buf.get(1..5)
            .ok_or_else(|| FsError::Comm("short GET_MANY reply".into()))?
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    if count != expected {
        return Err(FsError::Comm(format!(
            "GET_MANY entry count mismatch: asked {expected}, got {count}"
        )));
    }
    let mut out = Vec::with_capacity(count);
    let mut off = 5usize;
    for _ in 0..count {
        let len = u32::from_le_bytes(
            buf.get(off..off + 4)
                .ok_or_else(|| FsError::Comm("truncated GET_MANY frame".into()))?
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        off += 4;
        let entry = buf
            .get(off..off + len)
            .ok_or_else(|| FsError::Comm("truncated GET_MANY entry".into()))?;
        off += len;
        out.push(decode_get_reply(entry));
    }
    Ok(out)
}

/// One chunk of a PARTIAL entry: its table row plus the stored bytes.
#[derive(Debug, Clone)]
pub struct PartialChunk {
    /// Chunk index in the file's chunk table.
    pub index: u32,
    /// Fidelity tier (0 for range chunks).
    pub tier: u8,
    /// First raw byte the chunk covers.
    pub offset: u64,
    /// Decoded length of the chunk.
    pub raw_len: u32,
    /// At-rest CRC-32 of the stored bytes (from the chunk table — a
    /// mismatch against `stored` means the *serving node's copy* is
    /// damaged, so the client fails over to a replica).
    pub crc32: u32,
    /// Stored (possibly compressed) chunk bytes.
    pub stored: Vec<u8>,
}

impl PartialChunk {
    /// Verify the chunk's at-rest CRC and decode it to raw bytes. An
    /// at-rest mismatch means the *serving node's partition copy* is
    /// damaged (the outer entry CRC already ruled out in-flight damage),
    /// so the caller should fail over to a replica.
    pub fn decode(&self, inner: fanstore_compress::CodecId) -> Result<Vec<u8>, FsError> {
        if crc32(&self.stored) != self.crc32 {
            return Err(FsError::Corrupt(format!("chunk {}: at-rest CRC mismatch", self.index)));
        }
        if self.stored.len() == self.raw_len as usize {
            return Ok(self.stored.clone());
        }
        let codec = fanstore_compress::registry::create(inner)
            .map_err(|e| FsError::Corrupt(format!("chunk {}: {e}", self.index)))?;
        fanstore_compress::decompress_to_vec(codec.as_ref(), &self.stored, self.raw_len as usize)
            .map_err(|e| FsError::Corrupt(format!("chunk {}: {e}", self.index)))
    }
}

/// A decoded PARTIAL entry: the chunks covering the requested range (or
/// fidelity prefix) plus the geometry needed to decode and cache them.
#[derive(Debug, Clone)]
pub struct PartialReply {
    /// Codec the range chunks are compressed with.
    pub inner_codec: fanstore_compress::CodecId,
    /// File attributes.
    pub stat: FileStat,
    /// Nominal chunk size (0 for progressive containers).
    pub chunk_size: u32,
    /// Total raw file length.
    pub raw_len: u64,
    /// Served chunks, in table order.
    pub chunks: Vec<PartialChunk>,
}

/// One decoded v2 GET_MANY entry: a whole-file frame or a partial frame.
#[derive(Debug, Clone)]
pub enum GetManyItem {
    /// The v1 whole-file entry: codec, stat, compressed payload.
    Whole(fanstore_compress::CodecId, FileStat, Vec<u8>),
    /// A partial (chunked) entry.
    Partial(PartialReply),
}

/// Append a PARTIAL entry frame for a chunked object:
/// `[PARTIAL][crc32 u32][inner codec u16][stat 144B][chunk_size u32]
/// [raw_len u64][count u32]` then, per chunk,
/// `[idx u32][tier u8][offset u64][raw_len u32][stored_len u32][crc32 u32]
/// [stored bytes]`. The outer CRC covers everything after the CRC field
/// (in-flight damage fails the entry); each chunk additionally carries
/// its at-rest CRC from the chunk table, which the daemon does *not*
/// verify — a client detecting an at-rest mismatch fails over to a
/// replica whose copy may be intact.
fn encode_partial_entry(
    out: &mut Vec<u8>,
    obj: &LocalObject,
    spec: &GetManySpec<'_>,
    get_bytes: &crate::metrics::Counter,
) -> Result<(), FsError> {
    let table = crate::pack::parse_chunk_table(&obj.data)?;
    let idxs = match table.kind {
        crate::pack::ChunkKind::Progressive => table.tiers_up_to(spec.min_tier),
        crate::pack::ChunkKind::Range => match spec.range {
            Some((start, end)) if start < end && end <= table.raw_len => table.covering(start, end),
            Some((start, end)) => {
                return Err(FsError::BadRange(format!("[{start}, {end}) of {}", table.raw_len)))
            }
            None => (0..table.chunks.len()).collect(),
        },
    };
    let frame = out.len();
    out.push(status::PARTIAL);
    out.extend_from_slice(&[0u8; 4]); // outer CRC placeholder
    out.extend_from_slice(&table.inner_codec.0.to_le_bytes());
    obj.stat.encode(out);
    out.extend_from_slice(&table.chunk_size.to_le_bytes());
    out.extend_from_slice(&table.raw_len.to_le_bytes());
    out.extend_from_slice(&u32::try_from(idxs.len()).expect("chunk count fits u32").to_le_bytes());
    let mut sent = 0u64;
    for idx in idxs {
        let c = table.chunks[idx];
        let at = table.payload_offset(idx);
        let end = at + c.stored_len as usize;
        if obj.data.len() < end {
            return Err(FsError::Corrupt(format!("chunk {idx} payload truncated")));
        }
        out.extend_from_slice(&(idx as u32).to_le_bytes());
        out.push(c.tier);
        out.extend_from_slice(&c.offset.to_le_bytes());
        out.extend_from_slice(&c.raw_len.to_le_bytes());
        out.extend_from_slice(&c.stored_len.to_le_bytes());
        out.extend_from_slice(&c.crc32.to_le_bytes());
        out.extend_from_slice(&obj.data[at..end]);
        sent += u64::from(c.stored_len);
    }
    get_bytes.add(sent);
    let crc = crc32(&out[frame + GET_BODY..]);
    out[frame + 1..frame + GET_BODY].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

/// Decode a PARTIAL entry frame (inverse of [`encode_partial_entry`]).
fn decode_partial_entry(buf: &[u8]) -> Result<PartialReply, FsError> {
    if buf.len() < GET_BODY + 2 + STAT_SIZE + 4 + 8 + 4 {
        return Err(FsError::Comm("short PARTIAL entry".into()));
    }
    let expect = u32::from_le_bytes(buf[1..GET_BODY].try_into().expect("4 bytes"));
    let actual = crc32(&buf[GET_BODY..]);
    if expect != actual {
        return Err(FsError::Corrupt(format!(
            "PARTIAL entry CRC mismatch: stored {expect:08x}, computed {actual:08x}"
        )));
    }
    let mut off = GET_BODY;
    let inner_codec =
        fanstore_compress::CodecId(u16::from_le_bytes(buf[off..off + 2].try_into().expect("2B")));
    off += 2;
    let stat = FileStat::decode(&buf[off..off + STAT_SIZE])?;
    off += STAT_SIZE;
    let chunk_size = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
    off += 4;
    let raw_len = u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"));
    off += 8;
    let count = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes")) as usize;
    off += 4;
    let mut chunks = Vec::with_capacity(count);
    for _ in 0..count {
        let head = buf
            .get(off..off + 25)
            .ok_or_else(|| FsError::Comm("truncated PARTIAL chunk header".into()))?;
        let index = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
        let tier = head[4];
        let offset = u64::from_le_bytes(head[5..13].try_into().expect("8 bytes"));
        let craw = u32::from_le_bytes(head[13..17].try_into().expect("4 bytes"));
        let stored_len = u32::from_le_bytes(head[17..21].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(head[21..25].try_into().expect("4 bytes"));
        off += 25;
        let stored = buf
            .get(off..off + stored_len)
            .ok_or_else(|| FsError::Comm("truncated PARTIAL chunk payload".into()))?
            .to_vec();
        off += stored_len;
        chunks.push(PartialChunk { index, tier, offset, raw_len: craw, crc32: crc, stored });
    }
    if off != buf.len() {
        return Err(FsError::Comm(format!(
            "PARTIAL entry trailing bytes: consumed {off} of {}",
            buf.len()
        )));
    }
    Ok(PartialReply { inner_codec, stat, chunk_size, raw_len, chunks })
}

/// Decode a v2 GET_MANY reply: same outer framing as
/// [`decode_get_many_reply`], but each entry may be a whole-file frame
/// *or* a PARTIAL frame (first byte [`status::PARTIAL`]). A
/// [`status::BAD_REQUEST`] entry byte maps to [`FsError::BadRange`] — the
/// daemon judged the requested range malformed for that file, so
/// retrying a replica would not help. A [`status::ERROR`] entry byte maps
/// to [`FsError::Corrupt`]: the serving node's own copy was damaged, so
/// the client fails over to the next replica.
pub fn decode_get_many_reply_v2(
    buf: &[u8],
    expected: usize,
) -> Result<Vec<Result<GetManyItem, FsError>>, FsError> {
    match buf.first() {
        Some(&s) if s == status::OK => {}
        Some(&s) if s == status::SHED => return Err(FsError::Shed("remote: batch shed".into())),
        _ => return Err(FsError::Comm("malformed GET_MANY reply".into())),
    }
    let count = u32::from_le_bytes(
        buf.get(1..5)
            .ok_or_else(|| FsError::Comm("short GET_MANY reply".into()))?
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    if count != expected {
        return Err(FsError::Comm(format!(
            "GET_MANY entry count mismatch: asked {expected}, got {count}"
        )));
    }
    let mut out = Vec::with_capacity(count);
    let mut off = 5usize;
    for _ in 0..count {
        let len = u32::from_le_bytes(
            buf.get(off..off + 4)
                .ok_or_else(|| FsError::Comm("truncated GET_MANY frame".into()))?
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        off += 4;
        let entry = buf
            .get(off..off + len)
            .ok_or_else(|| FsError::Comm("truncated GET_MANY entry".into()))?;
        off += len;
        out.push(match entry.first() {
            Some(&s) if s == status::PARTIAL => {
                decode_partial_entry(entry).map(GetManyItem::Partial)
            }
            Some(&s) if s == status::BAD_REQUEST => {
                Err(FsError::BadRange("rejected by serving daemon".into()))
            }
            Some(&s) if s == status::ERROR => {
                Err(FsError::Corrupt("serving daemon's local copy damaged".into()))
            }
            _ => decode_get_reply(entry).map(|(c, s, d)| GetManyItem::Whole(c, s, d)),
        });
    }
    Ok(out)
}

fn handle_get_many(state: &NodeState, msg: &Message, get_bytes: &crate::metrics::Counter) -> bool {
    let reply = match decode_get_many_request(&msg.payload) {
        Some(specs) => {
            let mut out = vec![status::OK];
            out.extend_from_slice(&(specs.len() as u32).to_le_bytes());
            for spec in &specs {
                // Length placeholder, then the entry assembled in place —
                // one buffer for the whole batch reply, no per-entry Vec.
                let len_pos = out.len();
                out.extend_from_slice(&[0u8; 4]);
                match state.get_compressed(spec.path) {
                    Some(mut obj) => {
                        obj.stat.served_by = state.rank as u32;
                        let want_partial =
                            spec.range.is_some() || spec.min_tier != crate::pack::TIER_FULL;
                        if want_partial && obj.codec == crate::pack::CHUNKED {
                            let body = out.len();
                            match encode_partial_entry(&mut out, &obj, spec, get_bytes) {
                                Ok(()) => {}
                                // Only a malformed range is the client's
                                // fault; anything else (corrupt local
                                // chunk table/payload) must come back
                                // retryable so the client walks the
                                // replica ring instead of giving up.
                                Err(FsError::BadRange(_)) => {
                                    out.truncate(body);
                                    out.push(status::BAD_REQUEST);
                                }
                                Err(_) => {
                                    out.truncate(body);
                                    out.push(status::ERROR);
                                }
                            }
                        } else {
                            get_bytes.add(obj.data.len() as u64);
                            encode_get_reply_into(&mut out, &obj);
                        }
                    }
                    None => out.push(status::NOT_FOUND),
                }
                let n = (out.len() - len_pos - 4) as u32;
                out[len_pos..len_pos + 4].copy_from_slice(&n.to_le_bytes());
            }
            out
        }
        None => vec![status::BAD_REQUEST],
    };
    msg.reply(reply)
}

/// Run the daemon loop until a SHUTDOWN message arrives or every peer
/// endpoint is gone. Returns the number of requests served.
pub fn serve(state: Arc<NodeState>, service: Channel) -> u64 {
    serve_traced(state, service, None)
}

/// [`serve`] with an optional trace recorder: undeliverable replies (the
/// requester gave up — timed out or died) are counted in
/// `stats.reply_failures` and recorded as [`Op::Degraded`] events.
pub fn serve_traced(
    state: Arc<NodeState>,
    service: Channel,
    trace: Option<Arc<TraceRecorder>>,
) -> u64 {
    serve_qos(state, service, trace, None)
}

/// One tenant's service lane in the daemon scheduler: its bounded queue,
/// DRR bookkeeping, and per-tenant instrument handles (resolved once per
/// tenant, recorded through `Arc`s on the hot path).
struct Lane {
    /// `(arrival µs, message)`; the arrival stamp (0 when untimed) turns
    /// into the `daemon.queue` wait span at dispatch.
    queue: VecDeque<(u64, Message)>,
    weight: u64,
    deficit: u64,
    served: Arc<crate::metrics::Counter>,
    shed: Arc<crate::metrics::Counter>,
    depth: Arc<crate::metrics::Gauge>,
}

/// Per-tenant bounded queues drained by deficit round-robin. Without a
/// policy every message lands in tenant 0's unbounded lane and the drain
/// order is exactly arrival order — the pre-QoS FIFO, bit for bit.
struct Scheduler<'a> {
    state: &'a NodeState,
    policy: Option<&'a QosPolicy>,
    lanes: BTreeMap<u32, Lane>,
    /// Active tenants in visit order; the front lane holds the current
    /// deficit.
    rr: VecDeque<u32>,
    queued: usize,
    /// Whether to stamp arrivals for queue-wait attribution.
    timed: bool,
}

impl<'a> Scheduler<'a> {
    fn new(state: &'a NodeState, policy: Option<&'a QosPolicy>, timed: bool) -> Self {
        Scheduler { state, policy, lanes: BTreeMap::new(), rr: VecDeque::new(), queued: 0, timed }
    }

    fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Queue one arriving message on its tenant's lane; a full lane sheds
    /// it immediately (SHUTDOWN is never shed).
    fn enqueue(&mut self, msg: Message) {
        let tenant = msg.tenant;
        let lane = self.lanes.entry(tenant).or_insert_with(|| {
            let m = &self.state.metrics;
            Lane {
                queue: VecDeque::new(),
                weight: self.policy.map_or(1, |p| p.weight(tenant)),
                deficit: 0,
                served: m.counter(&format!("qos.tenant.{tenant}.served")),
                shed: m.counter(&format!("qos.tenant.{tenant}.shed")),
                depth: m.gauge(&format!("qos.tenant.{tenant}.queue_depth")),
            }
        });
        let depth = self.policy.map_or(0, |p| p.queue_depth);
        if depth > 0 && lane.queue.len() >= depth && msg.tag != tags::SHUTDOWN {
            // Count before replying: the requester may act on the SHED
            // reply immediately, and must find the counters consistent.
            lane.shed.inc();
            self.state.stats.daemon_shed.inc();
            msg.reply(vec![status::SHED]);
            return;
        }
        if lane.queue.is_empty() {
            self.rr.push_back(tenant);
        }
        let arrival = if self.timed { now_us() } else { 0 };
        lane.queue.push_back((arrival, msg));
        lane.depth.set(lane.queue.len() as u64);
        self.queued += 1;
    }

    /// Pop the next message under DRR: the front tenant receives its
    /// weight as quantum on arrival at the head and serves one request
    /// per unit of deficit; spending it (or draining the lane) rotates
    /// the tenant to the back of the round.
    fn next(&mut self) -> Option<(u32, u64, Message)> {
        while let Some(&tenant) = self.rr.front() {
            let lane = self.lanes.get_mut(&tenant).expect("active lane exists");
            if lane.queue.is_empty() {
                lane.deficit = 0;
                self.rr.pop_front();
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = lane.weight.max(1);
            }
            let (arrival, msg) = lane.queue.pop_front().expect("lane non-empty");
            lane.deficit -= 1;
            lane.depth.set(lane.queue.len() as u64);
            self.queued -= 1;
            let drained = lane.queue.is_empty();
            if lane.deficit == 0 || drained {
                lane.deficit = 0;
                self.rr.pop_front();
                if !drained {
                    self.rr.push_back(tenant);
                }
            }
            return Some((tenant, arrival, msg));
        }
        None
    }

    /// Count a dispatched request against its tenant.
    fn count_served(&self, tenant: u32) {
        if let Some(lane) = self.lanes.get(&tenant) {
            lane.served.inc();
        }
    }

    /// Count a shed request against its tenant (and the node total).
    fn count_shed(&self, tenant: u32) {
        if let Some(lane) = self.lanes.get(&tenant) {
            lane.shed.inc();
        }
        self.state.stats.daemon_shed.inc();
    }
}

/// How many dispatches between refreshes of the cached service-time
/// estimate (the `daemon.serve.latency_us` median).
const EST_REFRESH: u64 = 64;

/// [`serve_traced`] under an optional [`QosPolicy`]: arriving requests
/// queue per tenant (bounded; overflow is shed), the queues drain by
/// deficit round-robin instead of strict FIFO, and any request whose
/// deadline has expired — or whose remaining budget cannot cover the
/// estimated service time (the serve-latency median) — is answered with
/// [`status::SHED`] instead of being served. With `policy` `None` the
/// behaviour is exactly the historical FIFO loop.
pub fn serve_qos(
    state: Arc<NodeState>,
    mut service: Channel,
    trace: Option<Arc<TraceRecorder>>,
    policy: Option<Arc<QosPolicy>>,
) -> u64 {
    // Resolve instrument handles once; the loop records through Arcs.
    let serve_latency = state.metrics.histogram("daemon.serve.latency_us");
    let queue_wait = state.metrics.histogram("daemon.queue.wait_us");
    let get_bytes = state.metrics.counter("daemon.get.bytes");
    let timed = state.metrics.is_enabled() || trace.is_some();
    let mut sched = Scheduler::new(&state, policy.as_deref(), timed);
    let mut served = 0u64;
    // Cached estimate of one request's service time, used by the shed
    // decision; refreshed from the latency histogram every EST_REFRESH
    // dispatches (0 until the histogram has data).
    let mut est_serve_us = 0u64;
    'daemon: loop {
        // Admission: block only when nothing is queued, then drain every
        // message already waiting so the scheduler sees all tenants
        // before picking.
        if sched.is_empty() {
            match service.recv() {
                Ok(m) => sched.enqueue(m),
                Err(_) => break, // all peers disconnected
            }
        }
        while let Some(m) = service.try_recv() {
            sched.enqueue(m);
        }
        let Some((tenant, arrival_us, msg)) = sched.next() else { continue };
        // Queue wait: arrival → dispatch, charged to the request whether
        // it is served or shed below (the requester waited either way).
        if timed && arrival_us != 0 && msg.tag != tags::SHUTDOWN {
            let wait = now_us().saturating_sub(arrival_us);
            queue_wait.record_with_exemplar(wait, msg.request_id);
            if let Some(t) = &trace {
                t.record_span(SpanEvent {
                    request: msg.request_id,
                    rank: state.rank as u32,
                    stage: "daemon.queue".to_string(),
                    start_us: arrival_us,
                    dur_us: wait,
                });
            }
        }
        // Deadline shed: the requester stamped an absolute deadline on
        // the shared monotonic clock. If it already passed — or the
        // remaining budget can't cover the estimated service time — the
        // requester would discard the reply anyway; answer SHED instead
        // of burning the decode.
        if msg.deadline_us != 0 && msg.tag != tags::SHUTDOWN {
            let now = now_us();
            if now >= msg.deadline_us || msg.deadline_us - now < est_serve_us {
                sched.count_shed(tenant); // count first: see `enqueue`
                msg.reply(vec![status::SHED]);
                continue;
            }
        }
        served += 1;
        sched.count_served(tenant);
        let start = if timed { now_us() } else { 0 };
        let shutdown = msg.tag == tags::SHUTDOWN;
        let delivered = match msg.tag {
            tags::SHUTDOWN => msg.reply(vec![status::OK]),
            tags::GET => handle_get(&state, &msg, &get_bytes),
            tags::GET_MANY => handle_get_many(&state, &msg, &get_bytes),
            tags::GET_META => handle_get_meta(&state, &msg),
            tags::PUT_META => {
                let ok = state.merge_meta(&msg.payload).is_ok();
                msg.reply(vec![if ok { status::OK } else { status::BAD_REQUEST }])
            }
            tags::PUT => handle_put(&state, &msg),
            tags::UNLINK => handle_unlink(&state, &msg),
            _ => msg.reply(vec![status::BAD_REQUEST]),
        };
        if timed && !shutdown {
            serve_latency.record_with_exemplar(now_us().saturating_sub(start), msg.request_id);
            if served.is_multiple_of(EST_REFRESH) {
                est_serve_us = serve_latency.quantile(0.5);
            }
            // The requester minted the id; stamping it here lets a span
            // tree reassemble the server leg of the request.
            if let Some(t) = &trace {
                t.record_span(SpanEvent {
                    request: msg.request_id,
                    rank: state.rank as u32,
                    stage: "daemon.serve".to_string(),
                    start_us: start,
                    dur_us: now_us().saturating_sub(start),
                });
                // Writes get their own stage so `fanstore attrib` can
                // attribute write latency separately from read serving.
                if msg.tag == tags::PUT {
                    t.record_span(SpanEvent {
                        request: msg.request_id,
                        rank: state.rank as u32,
                        stage: "daemon.write_serve".to_string(),
                        start_us: start,
                        dur_us: now_us().saturating_sub(start),
                    });
                }
            }
        }
        if !delivered {
            state.stats.reply_failures.inc();
            if let Some(t) = &trace {
                t.record(Op::Degraded, "daemon:reply-drop", 0);
            }
        }
        if shutdown {
            break 'daemon;
        }
    }
    served
}

fn handle_get(state: &NodeState, msg: &Message, get_bytes: &crate::metrics::Counter) -> bool {
    let reply = match std::str::from_utf8(&msg.payload) {
        Ok(path) => match state.get_compressed(path) {
            Some(mut obj) => {
                // Failover provenance: stamp which rank actually served
                // the bytes (differs from `owner_rank` on a replica).
                obj.stat.served_by = state.rank as u32;
                get_bytes.add(obj.data.len() as u64);
                encode_get_reply(&obj)
            }
            None => vec![status::NOT_FOUND],
        },
        Err(_) => vec![status::BAD_REQUEST],
    };
    msg.reply(reply)
}

fn handle_put(state: &NodeState, msg: &Message) -> bool {
    let reply = match decode_put(&msg.payload) {
        // OK only once the write is durable: put_replica lands it in
        // the WAL (when one is attached) before returning, so a commit
        // failure must surface as a rejection, never an ACK.
        Some((path, owner, data)) => match state.put_replica(path, owner, data.to_vec()) {
            Ok(()) => vec![status::OK],
            Err(_) => vec![status::BAD_REQUEST],
        },
        None => vec![status::BAD_REQUEST],
    };
    msg.reply(reply)
}

fn handle_unlink(state: &NodeState, msg: &Message) -> bool {
    let reply = match std::str::from_utf8(&msg.payload) {
        Ok(path) => match state.remove_write(path) {
            Ok(true) => vec![status::OK],
            Ok(false) => vec![status::NOT_FOUND],
            Err(_) => vec![status::BAD_REQUEST], // input files are immutable
        },
        Err(_) => vec![status::BAD_REQUEST],
    };
    msg.reply(reply)
}

fn handle_get_meta(state: &NodeState, msg: &Message) -> bool {
    let reply = match std::str::from_utf8(&msg.payload) {
        Ok(path) => match state.meta.read().get(path) {
            Some(entry) => {
                let mut out = vec![status::OK];
                out.extend_from_slice(&encode_single(path, entry));
                out
            }
            None => vec![status::NOT_FOUND],
        },
        Err(_) => vec![status::BAD_REQUEST],
    };
    msg.reply(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::node::decompress_object;
    use crate::prep::{prepare, PrepConfig};

    #[test]
    fn get_reply_roundtrip() {
        let packed = prepare(
            vec![("f.bin".to_string(), b"hello hello hello hello".repeat(10))],
            &PrepConfig::default(),
        );
        let state = NodeState::new(0, 1, CacheConfig::default());
        state.load_partition(&packed.partitions[0]).unwrap();
        let obj = state.get_compressed("f.bin").unwrap();
        let buf = encode_get_reply(&obj);
        let (codec, stat, data) = decode_get_reply(&buf).unwrap();
        assert_eq!(codec, obj.codec);
        assert_eq!(stat.size, obj.stat.size);
        let plain = decompress_object(codec, &data, stat.size as usize, "f.bin").unwrap();
        assert_eq!(plain, b"hello hello hello hello".repeat(10));
    }

    #[test]
    fn not_found_reply_decodes_to_error() {
        assert!(matches!(decode_get_reply(&[status::NOT_FOUND]), Err(FsError::NotFound(_))));
        assert!(decode_get_reply(&[]).is_err());
        assert!(decode_get_reply(&[status::OK, 1]).is_err());
    }

    #[test]
    fn get_many_roundtrip_with_per_entry_status() {
        let packed = prepare(
            vec![
                ("g/a.bin".to_string(), b"aaaa".repeat(64)),
                ("g/b.bin".to_string(), b"bbbb".repeat(64)),
            ],
            &PrepConfig::default(),
        );
        let parts = packed.partitions;
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                state.load_partition(&parts[0]).unwrap();
                serve(state, service)
            } else {
                let req = encode_get_many_request(&["g/a.bin", "missing", "g/b.bin"]);
                let reply = service.rpc(0, tags::GET_MANY, req).unwrap();
                let entries = decode_get_many_reply(&reply, 3).unwrap();
                assert_eq!(entries.len(), 3);
                let (codec, stat, data) = entries[0].as_ref().unwrap().clone();
                assert_eq!(stat.served_by, 0);
                let plain = decompress_object(codec, &data, stat.size as usize, "g/a.bin").unwrap();
                assert_eq!(plain, b"aaaa".repeat(64));
                assert!(
                    matches!(entries[1], Err(FsError::NotFound(_))),
                    "missing entry fails alone"
                );
                assert!(entries[2].is_ok(), "entry after the miss still served");
                // A count mismatch is a batch-level framing error.
                assert!(decode_get_many_reply(&reply, 2).is_err());
                // A malformed request gets BAD_REQUEST, not a crash.
                let r = service.rpc(0, tags::GET_MANY, vec![1, 0, 0]).unwrap();
                assert_eq!(r, vec![status::BAD_REQUEST]);
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                3
            }
        });
        assert_eq!(results[0], 3);
    }

    #[test]
    fn get_many_corruption_fails_only_the_hit_entry() {
        // Build a 3-entry reply by hand, flip one byte inside the middle
        // entry's payload: decode must keep entries 0 and 2 intact and
        // report entry 1 as Corrupt — the per-entry-CRC guarantee the
        // batched failover path relies on.
        let packed = prepare(
            vec![
                ("m/a.bin".to_string(), b"entry-a ".repeat(40)),
                ("m/b.bin".to_string(), b"entry-b ".repeat(40)),
                ("m/c.bin".to_string(), b"entry-c ".repeat(40)),
            ],
            &PrepConfig::default(),
        );
        let state = NodeState::new(0, 1, CacheConfig::default());
        state.load_partition(&packed.partitions[0]).unwrap();
        let mut reply = vec![status::OK];
        reply.extend_from_slice(&3u32.to_le_bytes());
        let mut entry_starts = Vec::new();
        for p in ["m/a.bin", "m/b.bin", "m/c.bin"] {
            let entry = encode_get_reply(&state.get_compressed(p).unwrap());
            reply.extend_from_slice(&(entry.len() as u32).to_le_bytes());
            entry_starts.push(reply.len());
            reply.extend_from_slice(&entry);
        }
        let mid = entry_starts[1] + GET_BODY + 20; // inside entry 1's body
        reply[mid] ^= 0x10;
        let entries = decode_get_many_reply(&reply, 3).unwrap();
        assert!(entries[0].is_ok(), "entry before the flip survives");
        assert!(matches!(entries[1], Err(FsError::Corrupt(_))), "hit entry rejected by its CRC");
        assert!(entries[2].is_ok(), "entry after the flip survives");
        let (codec, stat, data) = entries[2].as_ref().unwrap().clone();
        let plain = decompress_object(codec, &data, stat.size as usize, "m/c.bin").unwrap();
        assert_eq!(plain, b"entry-c ".repeat(40));
    }

    #[test]
    fn get_many_request_roundtrip_and_limits() {
        let paths = vec!["a", "some/deep/path.bin", ""];
        let buf = encode_get_many_request(&paths);
        let specs = decode_get_many_request(&buf).unwrap();
        assert_eq!(specs.iter().map(|s| s.path).collect::<Vec<_>>(), paths);
        assert!(specs.iter().all(|s| s.range.is_none() && s.min_tier == crate::pack::TIER_FULL));
        // Trailing garbage rejected.
        let mut noisy = buf.clone();
        noisy.push(0);
        assert!(decode_get_many_request(&noisy).is_none());
        // Oversized counts rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_BATCH as u32 + 1).to_le_bytes());
        assert!(decode_get_many_request(&huge).is_none());
    }

    #[test]
    fn get_many_v2_request_roundtrip() {
        let specs = vec![
            GetManySpec::whole("plain.bin"),
            GetManySpec::range("big.bin", 4096, 8192),
            GetManySpec::tiered("model.f32", 2),
        ];
        let buf = encode_get_many_request_v2(&specs);
        let got = decode_get_many_request(&buf).unwrap();
        assert_eq!(got, specs);
        // Unknown flag bits are rejected, not silently skipped: find the
        // flags byte of the first entry and set a reserved bit.
        let mut bad = buf.clone();
        let flags_at = 4 + 2 + "plain.bin".len();
        bad[flags_at] |= 0x80;
        assert!(decode_get_many_request(&bad).is_none());
        // Truncated range payload rejected.
        let short = buf[..buf.len() - 1].to_vec();
        assert!(decode_get_many_request(&short).is_none());
    }

    #[test]
    fn get_many_v2_serves_range_chunks() {
        let body: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let packed = prepare(
            vec![("r/big.bin".to_string(), body.clone())],
            &PrepConfig { chunk_size: 4096, ..PrepConfig::default() },
        );
        let parts = packed.partitions;
        let results = mpi_sim::launch(2, 1, move |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                state.load_partition(&parts[0]).unwrap();
                serve(state, service)
            } else {
                // A 1000-byte window crossing a chunk boundary: only the
                // two covering chunks come back, not the whole file.
                let specs = vec![GetManySpec::range("r/big.bin", 3800, 4800)];
                let req = encode_get_many_request_v2(&specs);
                let reply = service.rpc(0, tags::GET_MANY, req).unwrap();
                let items = decode_get_many_reply_v2(&reply, 1).unwrap();
                let p = match items[0].as_ref().unwrap() {
                    GetManyItem::Partial(p) => p.clone(),
                    other => panic!("expected partial entry, got {other:?}"),
                };
                assert_eq!(p.stat.served_by, 0);
                assert_eq!(p.raw_len, body.len() as u64);
                assert_eq!(p.chunk_size, 4096);
                assert_eq!(p.chunks.len(), 2, "only the covering chunks travel");
                let mut window = Vec::new();
                for c in &p.chunks {
                    window.extend_from_slice(&c.decode(p.inner_codec).unwrap());
                }
                let lo = p.chunks[0].offset as usize;
                assert_eq!(&window[3800 - lo..4800 - lo], &body[3800..4800]);

                // An out-of-bounds range is BAD_REQUEST for that entry.
                let bad = vec![GetManySpec::range("r/big.bin", 100, body.len() as u64 + 1)];
                let reply =
                    service.rpc(0, tags::GET_MANY, encode_get_many_request_v2(&bad)).unwrap();
                let items = decode_get_many_reply_v2(&reply, 1).unwrap();
                assert!(matches!(items[0], Err(FsError::BadRange(_))));

                // A v1 whole-file request on the same chunked object still
                // round-trips (backward compatibility).
                let req = encode_get_many_request(&["r/big.bin"]);
                let reply = service.rpc(0, tags::GET_MANY, req).unwrap();
                let entries = decode_get_many_reply(&reply, 1).unwrap();
                let (codec, stat, data) = entries[0].as_ref().unwrap().clone();
                let plain =
                    decompress_object(codec, &data, stat.size as usize, "r/big.bin").unwrap();
                assert_eq!(plain, body);
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                4
            }
        });
        assert_eq!(results[0], 4);
    }

    #[test]
    fn get_many_v2_serves_progressive_tiers() {
        let floats: Vec<u8> = (0..2048).flat_map(|i| ((i as f32) * 0.25).to_le_bytes()).collect();
        let packed = prepare(
            vec![("p/model.f32".to_string(), floats.clone())],
            &PrepConfig { progressive_tiers: 4, ..PrepConfig::default() },
        );
        let parts = packed.partitions;
        let results = mpi_sim::launch(2, 1, move |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                state.load_partition(&parts[0]).unwrap();
                serve(state, service)
            } else {
                let specs = vec![GetManySpec::tiered("p/model.f32", 1)];
                let req = encode_get_many_request_v2(&specs);
                let reply = service.rpc(0, tags::GET_MANY, req).unwrap();
                let items = decode_get_many_reply_v2(&reply, 1).unwrap();
                let p = match items[0].as_ref().unwrap() {
                    GetManyItem::Partial(p) => p.clone(),
                    other => panic!("expected partial entry, got {other:?}"),
                };
                assert_eq!(p.chunks.len(), 2, "tiers 0..=1 travel, 2..=3 stay home");
                assert_eq!(p.chunks.iter().map(|c| c.tier).collect::<Vec<_>>(), vec![0, 1]);
                // The served tier prefix decodes to a usable approximation.
                let tiers: Vec<Vec<u8>> =
                    p.chunks.iter().map(|c| c.decode(p.inner_codec).unwrap()).collect();
                let refs: Vec<&[u8]> = tiers.iter().map(Vec::as_slice).collect();
                let approx =
                    fanstore_compress::progressive::decode_prefix(&refs, p.raw_len as usize)
                        .unwrap();
                assert_eq!(approx.len(), floats.len());
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                2
            }
        });
        assert_eq!(results[0], 2);
    }

    #[test]
    fn partial_entry_rejects_trailing_bytes_and_corrupt_table() {
        let body: Vec<u8> = (0..10_000u32).map(|i| (i % 239) as u8).collect();
        let packed = prepare(
            vec![("t/file.bin".to_string(), body)],
            &PrepConfig { chunk_size: 2048, ..PrepConfig::default() },
        );
        let state = NodeState::new(0, 1, CacheConfig::default());
        state.load_partition(&packed.partitions[0]).unwrap();
        let obj = state.get_compressed("t/file.bin").unwrap();
        let spec = GetManySpec::range("t/file.bin", 0, 5000);
        let counter = crate::metrics::MetricsRegistry::disabled().counter("test.bytes");
        let mut entry = Vec::new();
        encode_partial_entry(&mut entry, &obj, &spec, &counter).unwrap();
        assert!(decode_partial_entry(&entry).is_ok());
        // Trailing bytes with a fixed-up outer CRC are rejected by the
        // consumed-length check, never silently ignored.
        let mut padded = entry.clone();
        padded.push(0xAA);
        let crc = crc32(&padded[GET_BODY..]);
        padded[1..GET_BODY].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_partial_entry(&padded), Err(FsError::Comm(_))));
        // A damaged chunk table fails encode as Corrupt — the daemon's
        // copy is bad, not the request — so handle_get_many can answer
        // the retryable status::ERROR instead of BAD_REQUEST.
        let mut raw = (*obj.data).clone();
        raw[crate::pack::CHUNK_HEADER] ^= 0xFF;
        let bad = LocalObject { codec: obj.codec, stat: obj.stat, data: Arc::new(raw) };
        let mut out = Vec::new();
        assert!(matches!(
            encode_partial_entry(&mut out, &bad, &spec, &counter),
            Err(FsError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_local_chunk_table_replies_retryable_error_not_bad_request() {
        // Regression: one node's damaged copy must come back as a
        // retryable error so the client walks the replica ring — a
        // BAD_REQUEST reply would decode to BadRange and abort both the
        // failover and the whole-file fallback.
        let body: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let packed = prepare(
            vec![("c/big.bin".to_string(), body)],
            &PrepConfig { chunk_size: 4096, ..PrepConfig::default() },
        );
        let mut part = packed.partitions[0].clone();
        // Flip a byte inside the FCHK chunk table: the daemon's own copy
        // is damaged; the request itself is fine.
        let at = part.windows(4).position(|w| w == b"FCHK").expect("chunked container")
            + crate::pack::CHUNK_HEADER;
        part[at] ^= 0xFF;
        let results = mpi_sim::launch(2, 1, move |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                state.load_partition(&part).unwrap();
                serve(state, service)
            } else {
                let specs = vec![GetManySpec::range("c/big.bin", 0, 1000)];
                let reply =
                    service.rpc(0, tags::GET_MANY, encode_get_many_request_v2(&specs)).unwrap();
                let items = decode_get_many_reply_v2(&reply, 1).unwrap();
                assert!(
                    matches!(items[0], Err(FsError::Corrupt(_))),
                    "expected retryable Corrupt, got {:?}",
                    items[0]
                );
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                2
            }
        });
        assert_eq!(results[0], 2);
    }

    #[test]
    fn daemon_serves_get_and_shutdown_over_channels() {
        let packed = prepare(
            vec![("d/file.bin".to_string(), b"payload payload payload".repeat(8))],
            &PrepConfig::default(),
        );
        let parts = packed.partitions;
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                state.load_partition(&parts[0]).unwrap();
                serve(state, service)
            } else {
                let reply = service.rpc(0, tags::GET, b"d/file.bin".to_vec()).unwrap();
                let (codec, stat, data) = decode_get_reply(&reply).unwrap();
                assert_eq!(stat.served_by, 0, "daemon stamps the serving rank");
                let plain =
                    decompress_object(codec, &data, stat.size as usize, "d/file.bin").unwrap();
                assert_eq!(plain, b"payload payload payload".repeat(8));
                // Unknown path.
                let nf = service.rpc(0, tags::GET, b"missing".to_vec()).unwrap();
                assert_eq!(nf[0], status::NOT_FOUND);
                // Shut the daemon down.
                let ok = service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                assert_eq!(ok[0], status::OK);
                3
            }
        });
        assert_eq!(results[0], 3, "daemon served 3 requests");
    }

    #[test]
    fn corrupted_reply_rejected_by_crc() {
        let packed =
            prepare(vec![("f.bin".to_string(), b"abcdefgh".repeat(64))], &PrepConfig::default());
        let state = NodeState::new(0, 1, CacheConfig::default());
        state.load_partition(&packed.partitions[0]).unwrap();
        let obj = state.get_compressed("f.bin").unwrap();
        let good = encode_get_reply(&obj);
        // Flip one payload byte: decode must reject via CRC, not panic or
        // hand back corrupt bytes.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(decode_get_reply(&bad), Err(FsError::Corrupt(_))));
        // Flip a stat byte too — also covered by the CRC.
        let mut bad_stat = good.clone();
        bad_stat[GET_BODY + 10] ^= 0x01;
        assert!(matches!(decode_get_reply(&bad_stat), Err(FsError::Corrupt(_))));
        assert!(decode_get_reply(&good).is_ok());
    }

    #[test]
    fn bad_request_paths_reply_bad_request() {
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                serve(state, service)
            } else {
                // GET with a non-UTF-8 path.
                let r = service.rpc(0, tags::GET, vec![0xFF, 0xFE, 0x00]).unwrap();
                assert_eq!(r, vec![status::BAD_REQUEST]);
                // GET_META with a non-UTF-8 path.
                let r = service.rpc(0, tags::GET_META, vec![0x80]).unwrap();
                assert_eq!(r, vec![status::BAD_REQUEST]);
                // GET_META for an unknown path.
                let r = service.rpc(0, tags::GET_META, b"nope".to_vec()).unwrap();
                assert_eq!(r, vec![status::NOT_FOUND]);
                // PUT_META with garbage metadata.
                let r = service.rpc(0, tags::PUT_META, vec![9; 3]).unwrap();
                assert_eq!(r, vec![status::BAD_REQUEST]);
                // Unknown tag.
                let r = service.rpc(0, 777, Vec::new()).unwrap();
                assert_eq!(r, vec![status::BAD_REQUEST]);
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                6
            }
        });
        assert_eq!(results[0], 6, "daemon stayed up through every bad request");
    }

    #[test]
    fn undeliverable_reply_counted() {
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                let trace = Arc::new(crate::trace::TraceRecorder::new(8));
                let st = Arc::clone(&state);
                let served = serve_traced(st, service, Some(Arc::clone(&trace)));
                (served, state.stats.reply_failures.get(), trace.count(Op::Degraded))
            } else {
                // A bare send carries no reply conduit: the daemon's
                // answer is undeliverable and must be counted, not lost
                // silently.
                service.send(0, tags::GET, b"whatever".to_vec()).unwrap();
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                (0, 0, 0)
            }
        });
        assert_eq!(results[0], (2, 1, 1));
    }

    #[test]
    fn put_then_unlink_roundtrip() {
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                let st = Arc::clone(&state);
                let served = serve(st, service);
                let still_there = state.writes.read().contains_key("ckpt/seg0");
                (served, still_there)
            } else {
                let buf = encode_put("ckpt/seg0", 1, &[0xAB; 128]);
                let ok = service.rpc(0, tags::PUT, buf).unwrap();
                assert_eq!(ok[0], status::OK);
                // The replica now serves GETs for the pushed object.
                let reply = service.rpc(0, tags::GET, b"ckpt/seg0".to_vec()).unwrap();
                let (codec, stat, data) = decode_get_reply(&reply).unwrap();
                assert_eq!(stat.owner_rank, 1, "owner stays the pusher");
                let plain =
                    decompress_object(codec, &data, stat.size as usize, "ckpt/seg0").unwrap();
                assert_eq!(plain, vec![0xABu8; 128]);
                // Unlink removes it; a second unlink reports NOT_FOUND.
                let r = service.rpc(0, tags::UNLINK, b"ckpt/seg0".to_vec()).unwrap();
                assert_eq!(r[0], status::OK);
                let r = service.rpc(0, tags::UNLINK, b"ckpt/seg0".to_vec()).unwrap();
                assert_eq!(r[0], status::NOT_FOUND);
                // Truncated PUT payloads are rejected, not panicked on.
                let r = service.rpc(0, tags::PUT, vec![0xFF, 0xFF, 0x01]).unwrap();
                assert_eq!(r[0], status::BAD_REQUEST);
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                (0, false)
            }
        });
        assert_eq!(results[0], (6, false), "object gone after unlink");
    }

    #[test]
    fn put_meta_insertion() {
        let results = mpi_sim::launch(2, 1, |mut ctx| {
            let service = ctx.take_channel(0);
            if ctx.rank == 0 {
                let state = Arc::new(NodeState::new(0, 2, CacheConfig::default()));
                let st = Arc::clone(&state);
                let served = serve(st, service);
                let size = state.meta.read().stat("out/model_epoch3.h5").map(|s| s.size);
                (served, size)
            } else {
                let entry = crate::meta::MetaEntry {
                    stat: {
                        let mut s = FileStat::regular(0, 4242);
                        s.owner_rank = 1;
                        s
                    },
                    codec: fanstore_compress::CodecId(0),
                };
                let buf = encode_single("out/model_epoch3.h5", &entry);
                let ok = service.rpc(0, tags::PUT_META, buf).unwrap();
                assert_eq!(ok[0], status::OK);
                service.rpc(0, tags::SHUTDOWN, Vec::new()).unwrap();
                (0, None)
            }
        });
        assert_eq!(results[0], (2, Some(4242)));
    }
}
