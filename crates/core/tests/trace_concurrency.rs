//! The span ring under concurrent multi-writer load: 8 threads hammer
//! one recorder, and the overwrite-oldest contract must hold — a full
//! ring keeps exactly the *newest* `cap` pushes, each writer's retained
//! spans are a contiguous suffix of its write order (never torn, never
//! reordered), and request-id joins (all spans of one request) still
//! resolve for the requests young enough to be fully retained.

use std::sync::Arc;

use fanstore::attrib::attribute;
use fanstore::trace::{SpanEvent, TraceRecorder};

const THREADS: u64 = 8;
const SPANS_PER_REQUEST: u64 = 3;
const REQUESTS_PER_THREAD: u64 = 200;
const STAGES: [&str; SPANS_PER_REQUEST as usize] = ["client.get", "fabric.rpc", "daemon.serve"];

/// The request ids thread `t` writes, oldest first.
fn request_id(thread: u64, i: u64) -> u64 {
    (thread << 32) | (i + 1)
}

fn hammer(ring_cap: usize) -> Vec<SpanEvent> {
    let t = Arc::new(TraceRecorder::new(ring_cap));
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let t = Arc::clone(&t);
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_THREAD {
                    let request = request_id(thread, i);
                    for (k, stage) in STAGES.iter().enumerate() {
                        t.record_span(SpanEvent {
                            request,
                            rank: thread as u32,
                            stage: stage.to_string(),
                            start_us: i * 10 + k as u64,
                            dur_us: 10 - k as u64,
                        });
                    }
                }
            });
        }
    });
    t.spans()
}

/// A thread-local write-order key: the n-th span thread `t` wrote has
/// key n.
fn write_key(s: &SpanEvent) -> u64 {
    let stage_idx = STAGES.iter().position(|x| *x == s.stage).unwrap() as u64;
    ((s.request & 0xffff_ffff) - 1) * SPANS_PER_REQUEST + stage_idx
}

#[test]
fn full_ring_keeps_newest_spans_untorn() {
    // Ring far smaller than the workload: 8 * 200 * 3 = 4800 writes
    // into 1024 slots -> heavy overwrite under contention.
    let cap = 1024;
    let spans = hammer(cap);
    assert_eq!(spans.len(), cap, "a full ring holds exactly cap spans");

    for thread in 0..THREADS {
        let mine: Vec<&SpanEvent> = spans.iter().filter(|s| s.rank == thread as u32).collect();
        // Nothing torn: every retained span is byte-coherent with what
        // this thread wrote.
        for s in &mine {
            assert!(STAGES.contains(&s.stage.as_str()), "torn span {s:?}");
            assert_eq!(s.request >> 32, thread, "span under the wrong writer: {s:?}");
        }
        // Overwrite-oldest, per writer: this thread's pushes enter the
        // global order in its own program order, and the ring keeps the
        // globally newest cap pushes — so whatever survives must be a
        // contiguous, in-order *suffix* of the thread's writes (how
        // much survives depends on scheduling; the shape never does).
        let keys: Vec<u64> = mine.iter().map(|s| write_key(s)).collect();
        if let Some(&first) = keys.first() {
            let expected: Vec<u64> = (first..first + keys.len() as u64).collect();
            assert_eq!(keys, expected, "thread {thread}: retained spans are not a suffix");
            assert_eq!(
                *keys.last().unwrap(),
                REQUESTS_PER_THREAD * SPANS_PER_REQUEST - 1,
                "thread {thread}: its newest span was evicted while older ones survived"
            );
        }
    }
}

#[test]
fn request_joins_resolve_after_overwrite() {
    let cap = 1024;
    let spans = hammer(cap);
    let attrs = attribute(&spans);

    // Each writer has at most one request straddling its eviction
    // cutoff, so of the 1024 retained spans at most 8 * 2 belong to
    // partially-retained requests — everything else must join complete.
    let complete: Vec<_> = attrs.iter().filter(|a| a.spans == SPANS_PER_REQUEST as usize).collect();
    let min_complete = (cap - THREADS as usize * 2) / SPANS_PER_REQUEST as usize;
    assert!(
        complete.len() >= min_complete,
        "only {} of >= {min_complete} expected complete joins",
        complete.len()
    );

    // The joins carry the structure attribution needs: a root, exact
    // decomposition, single-rank bookkeeping.
    for a in &complete {
        assert_eq!(a.root_stage, "client.get", "{a:?}");
        assert_eq!(a.ranks, 1);
        assert_eq!(a.segments.iter().sum::<u64>() + a.residual_us, a.wall_us, "{a:?}");
    }
}

#[test]
fn oversized_ring_loses_nothing() {
    let total = (THREADS * REQUESTS_PER_THREAD * SPANS_PER_REQUEST) as usize;
    let spans = hammer(total + 16);
    assert_eq!(spans.len(), total, "no overwrite below capacity");
    let attrs = attribute(&spans);
    assert_eq!(attrs.len(), (THREADS * REQUESTS_PER_THREAD) as usize);
    assert!(attrs.iter().all(|a| a.spans == SPANS_PER_REQUEST as usize));
}
