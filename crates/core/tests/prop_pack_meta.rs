//! Property-based tests on the pack format and the metadata tables: the
//! two structures whose invariants every other component leans on.

use fanstore::meta::{MetaEntry, MetaTable};
use fanstore::pack::{parse_partition, PartitionBuilder};
use fanstore::stat::FileStat;
use fanstore_compress::{CodecFamily, CodecId};
use proptest::prelude::*;

/// Strategy for plausible relative paths (non-empty, < 256 bytes, no NUL).
fn path_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9_]{1,12}", 1..5).prop_map(|segs| segs.join("/"))
}

fn entry_strategy() -> impl Strategy<Value = (String, Vec<u8>)> {
    (path_strategy(), proptest::collection::vec(any::<u8>(), 0..512))
}

/// Drop entries whose path collides with another entry's path as a
/// directory prefix (a name cannot be both a file and a directory — real
/// file systems forbid it and the prep tool never produces it).
fn dedup_namespace(entries: Vec<(String, Vec<u8>)>) -> Vec<(String, Vec<u8>)> {
    let mut kept: Vec<(String, Vec<u8>)> = Vec::new();
    'outer: for (path, data) in entries {
        for (other, _) in &kept {
            if other == &path
                || other.starts_with(&format!("{path}/"))
                || path.starts_with(&format!("{other}/"))
            {
                continue 'outer;
            }
        }
        kept.push((path, data));
    }
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pack_roundtrips_arbitrary_entries(entries in proptest::collection::vec(entry_strategy(), 0..20)) {
        let codec = CodecId::new(CodecFamily::Store, 0);
        let mut builder = PartitionBuilder::new();
        for (i, (path, data)) in entries.iter().enumerate() {
            let mut stat = FileStat::regular(i as u64, data.len() as u64);
            stat.owner_rank = (i % 7) as u32;
            builder.push(path, codec, &stat, data);
        }
        let bytes = builder.finish();
        let parsed = parse_partition(&bytes).unwrap();
        prop_assert_eq!(parsed.len(), entries.len());
        for (e, (path, data)) in parsed.iter().zip(&entries) {
            prop_assert_eq!(&e.path, path);
            prop_assert_eq!(&e.data, data);
            prop_assert_eq!(e.stat.size as usize, data.len());
        }
    }

    #[test]
    fn pack_parse_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = parse_partition(&garbage);
    }

    #[test]
    fn pack_parse_never_panics_on_truncation(
        entries in proptest::collection::vec(entry_strategy(), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let codec = CodecId::new(CodecFamily::Store, 0);
        let mut builder = PartitionBuilder::new();
        for (i, (path, data)) in entries.iter().enumerate() {
            builder.push(path, codec, &FileStat::regular(i as u64, data.len() as u64), data);
        }
        let bytes = builder.finish();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = parse_partition(&bytes[..cut]);
    }

    #[test]
    fn meta_merge_is_idempotent_and_complete(entries in proptest::collection::vec(entry_strategy(), 0..25)) {
        let mut a = MetaTable::new();
        for (i, (path, data)) in entries.iter().enumerate() {
            a.insert(path, MetaEntry {
                stat: FileStat::regular(i as u64, data.len() as u64),
                codec: CodecId::new(CodecFamily::Lz4Hc, 9),
            });
        }
        let encoded = a.encode();
        let mut b = MetaTable::new();
        b.merge_encoded(&encoded).unwrap();
        // Merging the same buffer again must not change anything.
        b.merge_encoded(&encoded).unwrap();
        prop_assert_eq!(b.file_count(), a.file_count());
        for (path, _) in &entries {
            prop_assert_eq!(b.stat(path).map(|s| s.size), a.stat(path).map(|s| s.size));
        }
    }

    #[test]
    fn meta_readdir_covers_every_file(raw in proptest::collection::vec(entry_strategy(), 1..25)) {
        let entries = dedup_namespace(raw);
        let mut t = MetaTable::new();
        for (path, _) in &entries {
            t.insert(path, MetaEntry {
                stat: FileStat::regular(1, 1),
                codec: CodecId::new(CodecFamily::Store, 0),
            });
        }
        // Walk the directory index from the root: every inserted file must
        // be reachable, and stat() must classify dirs/files correctly.
        let mut reachable = std::collections::HashSet::new();
        let mut stack = vec![String::new()];
        while let Some(dir) = stack.pop() {
            for name in t.readdir(&dir).unwrap_or_default() {
                let full = if dir.is_empty() { name } else { format!("{dir}/{name}") };
                let st = t.stat(&full).expect("listed entries must stat");
                if st.is_dir() {
                    stack.push(full);
                } else {
                    reachable.insert(full);
                }
            }
        }
        for (path, _) in &entries {
            prop_assert!(reachable.contains(path), "unreachable: {path}");
        }
    }

    #[test]
    fn meta_merge_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let mut t = MetaTable::new();
        let _ = t.merge_encoded(&garbage);
    }
}
