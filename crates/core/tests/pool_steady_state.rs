//! Steady-state allocation behaviour of the decode hot path, observed
//! through the scratch-pool counters: after a warmup epoch, batched reads
//! that recycle their buffers must take every decode buffer from the pool
//! (`misses` flat, `hits` growing) — zero per-entry decode allocations.

use fanstore::cache::CacheConfig;
use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};

fn dataset(n: usize, file_bytes: usize) -> Vec<(String, Vec<u8>)> {
    (0..n)
        .map(|i| {
            let payload: Vec<u8> =
                (0..file_bytes).map(|j| ((i * 31 + j * 7) % 251) as u8).collect();
            (format!("ps/f{i:03}.bin"), payload)
        })
        .collect()
}

#[test]
fn read_many_steady_state_needs_no_decode_allocations() {
    let n = 16;
    let paths: Vec<String> = (0..n).map(|i| format!("ps/f{i:03}.bin")).collect();
    let packed = prepare(dataset(n, 8 * 1024), &PrepConfig { partitions: 2, ..Default::default() });
    let results = FanStore::run(
        ClusterConfig {
            nodes: 2,
            // Figure-4 eager policy: nothing stays cached, so every epoch
            // decodes every file — the worst case for allocation churn.
            cache: CacheConfig { capacity: 1 << 30, release_on_zero: true, ..Default::default() },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            let epoch = |fs: &fanstore::client::FsClient| {
                for r in fs.read_many(&paths) {
                    // Hand each consumed buffer back to the pool — the
                    // contract that makes the loop allocation-free.
                    fs.recycle(r.unwrap());
                }
            };
            epoch(fs); // warmup: populates the pool (all misses)
            let warm = fs.state().pool.stats();
            for _ in 0..3 {
                epoch(fs);
            }
            let steady = fs.state().pool.stats();
            (warm, steady)
        },
    );
    for (warm, steady) in results {
        assert!(warm.misses > 0, "warmup epoch must allocate");
        assert_eq!(
            steady.misses, warm.misses,
            "steady-state read_many must take every decode buffer from the pool"
        );
        assert!(
            steady.hits >= warm.hits + 3 * n as u64 / 2,
            "decodes after warmup must be pool hits: warm {warm:?} steady {steady:?}"
        );
    }
}

#[test]
fn posix_read_loop_recycles_through_eager_cache() {
    // The open/read/close surface with the eager-release cache: on close
    // the cache holds the last reference and recycles the decode buffer
    // itself — no cooperation from the reader needed.
    let n = 12;
    let packed = prepare(dataset(n, 16 * 1024), &PrepConfig::default());
    let results = FanStore::run(
        ClusterConfig {
            cache: CacheConfig { capacity: 1 << 30, release_on_zero: true, ..Default::default() },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            let epoch = |fs: &fanstore::client::FsClient| {
                for i in 0..n {
                    let path = format!("ps/f{i:03}.bin");
                    let fd = fs.open(&path).unwrap();
                    let mut buf = vec![0u8; 64 * 1024];
                    while fs.read(fd, &mut buf).unwrap() > 0 {}
                    fs.close(fd).unwrap();
                }
            };
            epoch(fs);
            let warm = fs.state().pool.stats();
            for _ in 0..3 {
                epoch(fs);
            }
            let steady = fs.state().pool.stats();
            (warm, steady)
        },
    );
    for (warm, steady) in results {
        assert_eq!(
            steady.misses, warm.misses,
            "fd-based epochs must reuse pooled buffers via cache eviction"
        );
        assert_eq!(
            steady.returns - warm.returns,
            steady.hits - warm.hits,
            "every recycled buffer came back through the eviction hook"
        );
    }
}

#[test]
fn retained_cache_plus_recycled_copies_stay_allocation_free() {
    // With a retentive cache, epoch 2+ are cache hits (no decode at all);
    // the per-read copies are pool-sourced and recycled, so misses stay
    // flat here too.
    let n = 10;
    let paths: Vec<String> = (0..n).map(|i| format!("ps/f{i:03}.bin")).collect();
    let packed = prepare(dataset(n, 4 * 1024), &PrepConfig::default());
    let results = FanStore::run(
        ClusterConfig {
            cache: CacheConfig { capacity: 1 << 30, release_on_zero: false, ..Default::default() },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            for r in fs.read_many(&paths) {
                fs.recycle(r.unwrap());
            }
            let warm = fs.state().pool.stats();
            for _ in 0..3 {
                for r in fs.read_many(&paths) {
                    fs.recycle(r.unwrap());
                }
            }
            let steady = fs.state().pool.stats();
            (warm, steady)
        },
    );
    for (warm, steady) in results {
        assert_eq!(steady.misses, warm.misses, "cache-hit epochs must not allocate copies");
    }
}
