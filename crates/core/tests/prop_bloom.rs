//! Property tests for the WAL's per-segment bloom filters. Two promises
//! matter: **no false negative, ever** (a false negative would make a
//! durable write unreadable — the filter would skip the one segment
//! holding it), and a false-positive rate that stays within 2x of the
//! configured target (a blown FP rate silently turns "negative lookups
//! never touch segment data" into wishful thinking). The FP bound is
//! checked both at segment-realistic small key counts — where naive
//! double hashing degrades by orders of magnitude — and at 1M keys.

use fanstore::wal::BloomFilter;
use proptest::prelude::*;

/// Strategy for keys shaped like the store's paths.
fn key_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9_]{1,10}", 1..4).prop_map(|segs| segs.join("/"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every inserted key answers "maybe present" — regardless of key
    /// set, capacity hint, or FP target.
    #[test]
    fn never_a_false_negative(
        keys in proptest::collection::vec(key_strategy(), 1..200),
        extra_capacity in 0usize..64,
        fp in 0.0001f64..0.2,
    ) {
        let filter = BloomFilter::from_keys(
            keys.iter().map(String::as_str),
            keys.len() + extra_capacity,
            fp,
        );
        for key in &keys {
            prop_assert!(filter.contains(key), "inserted key {key} reported absent");
        }
    }

    /// Decode(encode(f)) answers identically to f for members and
    /// non-members alike — a serialised segment filter is the filter.
    #[test]
    fn roundtrip_preserves_answers(
        keys in proptest::collection::vec(key_strategy(), 1..100),
        probes in proptest::collection::vec(key_strategy(), 1..100),
    ) {
        let filter =
            BloomFilter::from_keys(keys.iter().map(String::as_str), keys.len(), 0.01);
        let back = BloomFilter::decode(&filter.encode()).unwrap();
        prop_assert_eq!(back.len(), filter.len());
        for key in keys.iter().chain(&probes) {
            prop_assert_eq!(back.contains(key), filter.contains(key));
        }
    }

    /// Over-filling past the capacity hint never loses a key (the FP
    /// rate degrades, membership must not).
    #[test]
    fn overfill_still_has_no_false_negatives(
        keys in proptest::collection::vec(key_strategy(), 20..120),
    ) {
        let filter = BloomFilter::from_keys(keys.iter().map(String::as_str), 10, 0.01);
        for key in &keys {
            prop_assert!(filter.contains(key), "overfilled filter lost key {key}");
        }
    }
}

/// Measured FP rate over `probes` absent keys for a filter holding `n`.
fn fp_rate(n: usize, target: f64, probes: usize) -> f64 {
    let keys: Vec<String> = (0..n).map(|i| format!("out/obj-{i:06}.bin")).collect();
    let filter = BloomFilter::from_keys(keys.iter().map(String::as_str), n, target);
    let fps = (0..probes).filter(|i| filter.contains(&format!("absent/probe-{i}.bin"))).count();
    fps as f64 / probes as f64
}

/// The headline bound: at 1M keys the measured FP rate stays within 2x
/// of the configured target. Debug builds shrink to 100k keys — the
/// construction is size-oblivious, release CI checks the full million.
#[test]
fn fp_rate_within_2x_of_target_at_1m_keys() {
    let (n, probes) =
        if cfg!(debug_assertions) { (100_000, 100_000) } else { (1_000_000, 500_000) };
    for target in [0.01, 0.001] {
        let rate = fp_rate(n, target, probes);
        assert!(rate <= target * 2.0, "n={n}: measured FP rate {rate} beyond 2x target {target}");
    }
}

/// Segment-realistic small filters — the regime where an arithmetic-
/// progression probe sequence once inflated the FP rate ~100x past the
/// target. The slack term keeps the tiny-sample binomial noise at these
/// probe counts from flaking the 2x bound.
#[test]
fn fp_rate_holds_for_small_segments() {
    let target = 0.001;
    let probes = 200_000;
    for n in [1usize, 2, 3, 5, 8, 13, 21, 64, 256] {
        let rate = fp_rate(n, target, probes);
        let slack = 30.0 / probes as f64;
        assert!(
            rate <= target * 2.0 + slack,
            "n={n}: measured FP rate {rate} beyond 2x target {target}"
        );
    }
}
