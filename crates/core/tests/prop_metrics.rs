//! Property-based tests for the log-linear latency histogram — the
//! invariants every exported quantile rests on — plus a multi-thread
//! recording test for the lock-free hot path.

use std::sync::Arc;

use fanstore::metrics::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// Values spread across the full dynamic range (latencies are ~1 us to
/// minutes, but the histogram must hold any `u64`).
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..1024,          // exact range + first log buckets
        1024u64..10_000_000, // microsecond latencies
        any::<u64>(),        // the whole range
    ]
}

fn recorded(reg: &MetricsRegistry, values: &[u64]) -> Arc<Histogram> {
    let h = reg.histogram("h");
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value lands in a bucket that brackets it, and the bucket is
    /// never wider than the advertised ~1.6% relative precision.
    #[test]
    fn bucket_brackets_value_within_precision(v in value_strategy()) {
        let (low, high) = Histogram::bounds_of(v);
        prop_assert!(low <= v && v <= high, "{v} outside [{low}, {high}]");
        if low >= 128 {
            prop_assert!(
                (high - low) as f64 <= low as f64 / 63.0,
                "bucket [{low}, {high}] wider than precision"
            );
        } else {
            prop_assert_eq!(low, high, "values below 2^7 are exact");
        }
    }

    /// Merging two histograms is indistinguishable from having recorded
    /// the union of both value streams.
    #[test]
    fn merge_equals_union(
        a in proptest::collection::vec(value_strategy(), 0..200),
        b in proptest::collection::vec(value_strategy(), 0..200),
    ) {
        let reg = MetricsRegistry::new();
        let ha = recorded(&reg, &a);
        let hb = reg.histogram("b");
        for &v in &b {
            hb.record(v);
        }
        ha.merge(&hb);

        let union: Vec<u64> = a.iter().chain(&b).copied().collect();
        let hu = recorded(&MetricsRegistry::new(), &union);
        prop_assert_eq!(ha.summary(), hu.summary());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q), "q = {}", q);
        }
    }

    /// Quantile estimates are monotone in `q` and stay inside the
    /// observed `[min, max]`.
    #[test]
    fn quantiles_monotone_and_bounded(
        values in proptest::collection::vec(value_strategy(), 1..300),
    ) {
        let h = recorded(&MetricsRegistry::new(), &values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let estimates: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for pair in estimates.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles must be monotone: {estimates:?}");
        }
        prop_assert!(*estimates.first().unwrap() >= h.min());
        prop_assert!(*estimates.last().unwrap() <= h.max());
        prop_assert_eq!(estimates[7], h.max(), "q=1.0 is the observed max");
    }

    /// count/sum/min/max are exact regardless of bucketing.
    #[test]
    fn moments_are_exact(values in proptest::collection::vec(0u64..1u64 << 40, 1..200)) {
        let h = recorded(&MetricsRegistry::new(), &values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }

    /// Snapshot deltas subtract counters and histogram count/sum exactly.
    #[test]
    fn snapshot_delta_matches_increment(
        before in 0u64..1000,
        extra in 0u64..1000,
    ) {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        c.add(before);
        let snap = reg.snapshot();
        c.add(extra);
        prop_assert_eq!(reg.snapshot().delta(&snap).counter("c"), extra);
    }
}

/// Four threads hammer one histogram; totals must come out exact and the
/// quantiles must reflect every thread's stream (the lock-free claim).
#[test]
fn concurrent_recording_is_lossless() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    let reg = MetricsRegistry::new();
    let h = reg.histogram("contended");
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Distinct per-thread ranges so a lost update would
                    // also skew the quantiles, not just the count.
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let n = THREADS * PER_THREAD;
    assert_eq!(h.count(), n);
    assert_eq!(h.sum(), n * (n - 1) / 2);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), n - 1);
    let p50 = h.quantile(0.5);
    let mid = n / 2;
    assert!((p50 as f64 - mid as f64).abs() <= mid as f64 / 32.0, "p50 {p50} too far from {mid}");
}
