//! Cluster-level cache behaviour tests: the §IV-C3 policy observed from
//! outside, through real epoch-style access patterns.

use std::sync::atomic::Ordering;

use fanstore::cache::CacheConfig;
use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};

fn dataset(n: usize, file_bytes: usize) -> Vec<(String, Vec<u8>)> {
    (0..n).map(|i| (format!("cb/f{i:03}.bin"), vec![(i % 251) as u8; file_bytes])).collect()
}

/// Read every file once ("one epoch") and return (hits, misses).
fn epoch_pass(fs: &fanstore::client::FsClient, n: usize) {
    for i in 0..n {
        let _ = fs.read_whole(&format!("cb/f{i:03}.bin")).unwrap();
    }
}

#[test]
fn large_cache_turns_second_epoch_into_hits() {
    let n = 16;
    let packed = prepare(dataset(n, 8 * 1024), &PrepConfig::default());
    let stats = FanStore::run(
        ClusterConfig {
            cache: CacheConfig { capacity: 1 << 24, release_on_zero: false, ..Default::default() },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            epoch_pass(fs, n);
            let misses_after_first = fs.state().cache.stats().misses.load(Ordering::Relaxed);
            epoch_pass(fs, n);
            let hits = fs.state().cache.stats().hits.load(Ordering::Relaxed);
            (misses_after_first, hits)
        },
    );
    let (misses, hits) = stats[0];
    assert_eq!(misses, n as u64, "first epoch misses everything");
    assert_eq!(hits, n as u64, "second epoch is all hits");
}

#[test]
fn eager_policy_never_accumulates_memory() {
    let n = 12;
    let packed = prepare(dataset(n, 16 * 1024), &PrepConfig::default());
    let resident = FanStore::run(
        ClusterConfig {
            cache: CacheConfig { capacity: 1 << 30, release_on_zero: true, ..Default::default() },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            for _ in 0..3 {
                epoch_pass(fs, n);
            }
            fs.state().cache.resident_bytes()
        },
    );
    assert_eq!(resident[0], 0, "figure-4 policy leaves nothing resident");
}

#[test]
fn tight_cache_bounds_memory_at_capacity() {
    let n = 20;
    let file_bytes = 16 * 1024;
    let capacity = 4 * file_bytes; // room for 4 decompressed files
    let packed = prepare(dataset(n, file_bytes), &PrepConfig::default());
    let resident = FanStore::run(
        ClusterConfig {
            cache: CacheConfig { capacity, release_on_zero: false, shards: 1 },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            for _ in 0..2 {
                epoch_pass(fs, n);
            }
            fs.state().cache.resident_bytes()
        },
    );
    assert!(resident[0] <= capacity, "resident {} exceeds capacity {capacity}", resident[0]);
    assert!(resident[0] > 0, "bounded policy keeps something");
}

#[test]
fn uniform_access_makes_fifo_hit_rate_proportional_to_capacity() {
    // The paper's §IV-C3 premise: with uniform random access, no policy
    // beats capacity/dataset-size hit rate — verify FIFO lands near it.
    let n = 32usize;
    let file_bytes = 8 * 1024;
    let capacity = 8 * file_bytes; // 25% of the dataset
    let packed = prepare(dataset(n, file_bytes), &PrepConfig::default());
    let rates = FanStore::run(
        ClusterConfig {
            cache: CacheConfig { capacity, release_on_zero: false, shards: 1 },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            // Warm.
            epoch_pass(fs, n);
            let h0 = fs.state().cache.stats().hits.load(Ordering::Relaxed);
            let m0 = fs.state().cache.stats().misses.load(Ordering::Relaxed);
            // Measured epochs with sequential (worst-case-for-FIFO) order.
            for _ in 0..4 {
                epoch_pass(fs, n);
            }
            let h = fs.state().cache.stats().hits.load(Ordering::Relaxed) - h0;
            let m = fs.state().cache.stats().misses.load(Ordering::Relaxed) - m0;
            h as f64 / (h + m) as f64
        },
    );
    // Sequential sweep over a FIFO of 25% capacity yields ~0% hits (the
    // classic sequential-flooding result); uniform random would approach
    // 25%. Either way the rate must stay below the capacity fraction plus
    // noise — FIFO cannot conjure hits beyond its residency.
    assert!(rates[0] <= 0.30, "hit rate {} exceeds capacity share", rates[0]);
}
