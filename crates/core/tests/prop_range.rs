//! Property tests pinning the byte-range read path (DESIGN.md §10):
//! for arbitrary file contents, chunk sizes, codecs and ranges,
//! `read_range(path, a, b)` must be byte-identical to
//! `read_whole(path)[a..b]` from every rank; malformed ranges must fail
//! with the typed `FsError::BadRange` (never a panic); and a partial
//! read followed by a full read must leave the cache entry identical to
//! a cold full read.

use fanstore::cluster::{ClusterConfig, FanStore};
use fanstore::prep::{prepare, PrepConfig};
use fanstore::FsError;
use fanstore_compress::{CodecFamily, CodecId};
use proptest::prelude::*;

/// Codecs a chunked container may carry (fast levels only).
fn codec(pick: u8) -> CodecId {
    match pick % 4 {
        0 => CodecId::new(CodecFamily::Store, 0),
        1 => CodecId::new(CodecFamily::Lz4Fast, 1),
        2 => CodecId::new(CodecFamily::Lzf, 2),
        _ => CodecId::new(CodecFamily::Lz4Hc, 6),
    }
}

/// File bodies with different compressibility profiles.
fn body_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes.
        proptest::collection::vec(any::<u8>(), 64..8192),
        // Tiled block (compressible).
        (proptest::collection::vec(any::<u8>(), 1..48), 8usize..400).prop_map(|(block, reps)| {
            block.iter().copied().cycle().take(block.len() * reps).collect()
        }),
        // Position-dependent ramp.
        (any::<u8>(), 64usize..8192)
            .prop_map(|(seed, n)| (0..n).map(|j| seed.wrapping_add((j / 5) as u8)).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `read_range` equals the slice of the whole file — local on the
    /// owning rank, remote (v2 GET_MANY) on the other — and a
    /// partial-then-full sequence leaves the cache holding exactly the
    /// cold-full-read bytes.
    #[test]
    fn range_reads_match_whole_file_slices(
        data in body_strategy(),
        chunk_pow in 6u32..12,          // 64 B .. 2 KiB chunks
        pick in any::<u8>(),
        a_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let chunk = 1usize << chunk_pow;
        let n = data.len();
        let a = ((n - 1) as f64 * a_frac) as u64;
        let b = (a + 1 + ((n as u64 - a - 1) as f64 * len_frac) as u64).min(n as u64);
        let packed = prepare(
            vec![("pr/file.bin".to_string(), data.clone())],
            &PrepConfig { partitions: 1, chunk_size: chunk, codec: codec(pick), ..Default::default() },
        );
        let results = FanStore::run(
            ClusterConfig { nodes: 2, ..Default::default() },
            packed.partitions,
            move |fs| {
                // Ranged read first (cold cache), on both ranks: rank 0
                // exercises the local chunk path, rank 1 the remote v2
                // protocol.
                let ranged = fs.read_range("pr/file.bin", a, b).expect("range read");
                // Then the full read: the Partial cache entry upgrades to
                // Full and must equal a cold full read.
                let whole = fs.read_whole("pr/file.bin").expect("whole read");
                (ranged, whole)
            },
        );
        for (rank, (ranged, whole)) in results.into_iter().enumerate() {
            prop_assert_eq!(&whole, &data, "rank {} whole read exact", rank);
            prop_assert_eq!(
                &ranged[..],
                &data[a as usize..b as usize],
                "rank {} range [{}, {})",
                rank, a, b
            );
        }
    }

    /// Out-of-bounds and empty ranges are typed errors, never panics,
    /// and never corrupt later reads.
    #[test]
    fn bad_ranges_error_typed(
        data in body_strategy(),
        chunk_pow in 6u32..12,
        over in 1u64..1000,
    ) {
        let n = data.len() as u64;
        let packed = prepare(
            vec![("pr/file.bin".to_string(), data.clone())],
            &PrepConfig { partitions: 1, chunk_size: 1usize << chunk_pow, ..Default::default() },
        );
        let results = FanStore::run(
            ClusterConfig { nodes: 2, ..Default::default() },
            packed.partitions,
            move |fs| {
                // end beyond the file.
                let past_end = fs.read_range("pr/file.bin", 0, n + over);
                // empty window.
                let empty = fs.read_range("pr/file.bin", n / 2, n / 2);
                // inverted window.
                let inverted = fs.read_range("pr/file.bin", n, 0);
                // start at or past the end.
                let at_end = fs.read_range("pr/file.bin", n, n + over);
                // A good read afterwards still works.
                let good = fs.read_range("pr/file.bin", 0, 1).expect("good read after errors");
                (
                    matches!(past_end, Err(FsError::BadRange(_))),
                    matches!(empty, Err(FsError::BadRange(_))),
                    matches!(inverted, Err(FsError::BadRange(_))),
                    matches!(at_end, Err(FsError::BadRange(_))),
                    good,
                )
            },
        );
        for (rank, (past_end, empty, inverted, at_end, good)) in results.into_iter().enumerate() {
            prop_assert!(past_end, "rank {rank}: end past EOF must be BadRange");
            prop_assert!(empty, "rank {rank}: empty range must be BadRange");
            prop_assert!(inverted, "rank {rank}: inverted range must be BadRange");
            prop_assert!(at_end, "rank {rank}: start at EOF must be BadRange");
            prop_assert_eq!(&good[..], &data[..1], "rank {} reads fine after errors", rank);
        }
    }
}
