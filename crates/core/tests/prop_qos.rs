//! Property-based tests for the QoS token bucket: whatever the admit
//! schedule, a bucket must never hand out more than `rate * elapsed +
//! burst` tokens, must behave identically on identical schedules (the
//! chaos-suite determinism contract extends to admission control), and
//! must never let idle time accumulate credit beyond the burst.

use fanstore::qos::TokenBucket;
use proptest::prelude::*;

/// A monotone admit schedule: cumulative instants (us) built from gaps,
/// including repeated instants (gap 0) — the clock may not advance
/// between calls.
fn schedule() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..200_000, 1..200).prop_map(|gaps| {
        let mut t = 0u64;
        gaps.into_iter()
            .map(|g| {
                t += g;
                t
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: admissions over any schedule never exceed the
    /// tokens that could exist — the initial burst plus everything the
    /// refill rate generated across the elapsed window (+1 for f64
    /// accumulation slack).
    #[test]
    fn admissions_never_exceed_rate_times_elapsed_plus_burst(
        times in schedule(),
        rate_per_s in 0.0f64..50_000.0,
        burst in 0u32..64,
    ) {
        let bucket = TokenBucket::new(rate_per_s, burst);
        let admitted = times.iter().filter(|&&t| bucket.try_admit(t)).count() as f64;
        let elapsed = *times.last().expect("non-empty schedule") as f64;
        let ceiling = elapsed * rate_per_s / 1e6 + f64::from(burst) + 1.0;
        prop_assert!(
            admitted <= ceiling,
            "admitted {admitted} > rate*t+burst = {ceiling} \
             (rate {rate_per_s}/s, burst {burst}, elapsed {elapsed}us)"
        );
    }

    /// Determinism: two buckets fed the same schedule make identical
    /// admit/refuse decisions at every step.
    #[test]
    fn identical_schedules_make_identical_decisions(
        times in schedule(),
        rate_per_s in 0.0f64..50_000.0,
        burst in 0u32..64,
    ) {
        let a = TokenBucket::new(rate_per_s, burst);
        let b = TokenBucket::new(rate_per_s, burst);
        for (i, &t) in times.iter().enumerate() {
            prop_assert_eq!(a.try_admit(t), b.try_admit(t), "decision {} diverged", i);
        }
    }

    /// No idle rollover: however long the bucket sat unused, a burst of
    /// calls at one instant admits at most `burst` operations.
    #[test]
    fn idle_time_never_accumulates_beyond_burst(
        idle_us in 0u64..u64::from(u32::MAX),
        calls in 1usize..256,
        rate_per_s in 0.0f64..50_000.0,
        burst in 0u32..64,
    ) {
        let bucket = TokenBucket::new(rate_per_s, burst);
        let admitted = (0..calls).filter(|_| bucket.try_admit(idle_us)).count();
        prop_assert!(
            admitted <= burst as usize,
            "admitted {admitted} > burst {burst} after {idle_us}us idle"
        );
    }
}
