//! Property tests for the sharded decompressed-file cache (§IV-C3):
//! per-shard byte budgets hold under arbitrary op sequences, the merged
//! counters are exactly the per-shard sums, and each shard behaves
//! exactly like an independent single-lock FIFO cache of its budget —
//! the equivalence the sharding refactor rests on.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use fanstore::cache::{CacheConfig, FileCache};
use proptest::prelude::*;

/// A get/insert/evict script step over a small path pool.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `open()` (followed by `close()` on a hit, so entries never stay
    /// pinned between steps).
    Open(usize),
    /// `insert()` of the given byte size, immediately `close()`d.
    Insert(usize, usize),
    /// `purge()` (the unlink path — forced eviction).
    Purge(usize),
}

impl Op {
    fn path_idx(&self) -> usize {
        match *self {
            Op::Open(p) | Op::Insert(p, _) | Op::Purge(p) => p,
        }
    }
}

/// Observable result of one step — what an equivalence check can compare.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Hit,
    Miss,
    /// `insert` returned the canonical buffer of this length (differs
    /// from the inserted size when an existing entry won).
    Inserted(usize),
    Purged(bool),
}

fn path(i: usize) -> String {
    format!("d{}/f{i:02}.bin", i % 3)
}

fn apply(c: &FileCache, op: Op) -> Outcome {
    match op {
        Op::Open(p) => {
            let path = path(p);
            match c.open(&path) {
                Some(_) => {
                    c.close(&path);
                    Outcome::Hit
                }
                None => Outcome::Miss,
            }
        }
        Op::Insert(p, size) => {
            let path = path(p);
            let canonical = c.insert(&path, Arc::new(vec![(p % 251) as u8; size]));
            let len = canonical.len();
            c.close(&path);
            Outcome::Inserted(len)
        }
        Op::Purge(p) => Outcome::Purged(c.purge(&path(p))),
    }
}

fn op_strategy(paths: usize, max_size: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..paths).prop_map(Op::Open),
        (0..paths, 1..=max_size).prop_map(|(p, s)| Op::Insert(p, s)),
        (0..paths).prop_map(Op::Purge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With no entry held open between steps and no entry larger than a
    /// shard's budget slice, every shard stays within its budget at every
    /// step — and therefore the whole cache never exceeds `capacity`.
    #[test]
    fn byte_budget_never_exceeded(
        ops in proptest::collection::vec(op_strategy(12, 256), 1..120),
    ) {
        let capacity = 2048usize; // 4 shards x 512 >= max entry size 256
        let c = FileCache::new(CacheConfig { capacity, release_on_zero: false, shards: 4 });
        for &op in &ops {
            apply(&c, op);
            for (i, s) in c.shard_snapshots().iter().enumerate() {
                prop_assert!(
                    s.resident_bytes <= s.budget,
                    "shard {i}: resident {} over budget {}", s.resident_bytes, s.budget
                );
            }
            prop_assert!(c.resident_bytes() <= capacity);
        }
    }

    /// The merged `CacheStats` (and the merged residency/entry views) are
    /// exactly the sums over the per-shard snapshots.
    #[test]
    fn merged_stats_equal_per_shard_sums(
        ops in proptest::collection::vec(op_strategy(16, 128), 1..150),
    ) {
        let c = FileCache::new(CacheConfig { capacity: 4096, release_on_zero: false, shards: 8 });
        for &op in &ops {
            apply(&c, op);
        }
        let merged = c.stats();
        let snaps = c.shard_snapshots();
        prop_assert_eq!(
            merged.hits.load(Ordering::Relaxed),
            snaps.iter().map(|s| s.hits).sum::<u64>()
        );
        prop_assert_eq!(
            merged.misses.load(Ordering::Relaxed),
            snaps.iter().map(|s| s.misses).sum::<u64>()
        );
        prop_assert_eq!(
            merged.evictions.load(Ordering::Relaxed),
            snaps.iter().map(|s| s.evictions).sum::<u64>()
        );
        prop_assert_eq!(
            c.resident_bytes() as u64,
            snaps.iter().map(|s| s.resident_bytes).sum::<u64>()
        );
        prop_assert_eq!(c.len() as u64, snaps.iter().map(|s| s.entries).sum::<u64>());
    }

    /// Shard independence: replaying each shard's op subsequence on a
    /// fresh *single-lock* cache sized to that shard's budget reproduces
    /// the sharded cache's per-op outcomes (hit/miss/dedup/purge) and its
    /// final per-shard counters exactly. Sharding changes lock
    /// granularity, not semantics.
    #[test]
    fn sharded_outcomes_match_single_lock_reference(
        ops in proptest::collection::vec(op_strategy(12, 200), 1..150),
    ) {
        let shards = 4usize;
        let c = FileCache::new(CacheConfig { capacity: 1600, release_on_zero: false, shards });
        let observed: Vec<(usize, Outcome)> =
            ops.iter().map(|&op| (c.shard_of(&path(op.path_idx())), apply(&c, op))).collect();
        let snaps = c.shard_snapshots();
        for (s, snap) in snaps.iter().enumerate() {
            let reference = FileCache::new(CacheConfig {
                capacity: snap.budget as usize,
                release_on_zero: false,
                shards: 1,
            });
            let mut expect = Vec::new();
            for (&op, (shard, _)) in ops.iter().zip(&observed) {
                if *shard == s {
                    expect.push(apply(&reference, op));
                }
            }
            let got: Vec<Outcome> = observed
                .iter()
                .filter(|(shard, _)| *shard == s)
                .map(|(_, o)| o.clone())
                .collect();
            prop_assert_eq!(&expect, &got, "shard {} diverged from single-lock replay", s);
            let r = reference.stats();
            prop_assert_eq!(r.hits.load(Ordering::Relaxed), snap.hits);
            prop_assert_eq!(r.misses.load(Ordering::Relaxed), snap.misses);
            prop_assert_eq!(r.evictions.load(Ordering::Relaxed), snap.evictions);
            prop_assert_eq!(reference.resident_bytes() as u64, snap.resident_bytes);
            prop_assert_eq!(reference.len() as u64, snap.entries);
        }
    }
}

/// Deterministic spot check of the headline invariant (no proptest
/// shrink noise): sequential flooding through a 4-shard cache lands every
/// shard exactly at or under budget.
#[test]
fn flooding_respects_shard_budgets() {
    let c = FileCache::new(CacheConfig { capacity: 1024, release_on_zero: false, shards: 4 });
    for i in 0..200 {
        let p = format!("flood/f{i:03}");
        c.insert(&p, Arc::new(vec![0u8; 64]));
        c.close(&p);
    }
    for s in c.shard_snapshots() {
        assert!(s.resident_bytes <= s.budget, "{s:?}");
    }
    assert!(c.resident_bytes() <= 1024);
    assert!(c.stats().evictions.load(Ordering::Relaxed) > 0, "pressure actually evicted");
}
