//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses (the build environment has no network access to crates.io, so the
//! workspace vendors minimal shims — see `shims/README.md`).
//!
//! Implements [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`, `fill`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). Value streams are
//! deterministic per generator but are not bit-compatible with upstream
//! `rand`; nothing in this repository depends on upstream streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64 (same approach
    /// as upstream; streams differ, determinism is what matters).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (mirrors `SampleRange`).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                self.start() + u * (self.end() - self.start())
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator, "gen_ratio: bad ratio");
        self.gen_range(0..denominator) < numerator
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Commonly imported names (mirrors `rand::prelude`).
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Bundled simple generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast non-cryptographic PRNG (xoshiro256**-based; fills the
    /// role of `rand::rngs::SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            // Avoid the all-zero state.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(va, (0..32).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..16);
            assert!(v < 16);
            let f: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
            let i: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
