//! Offline stand-in for the subset of `proptest` this workspace uses (see
//! `shims/README.md`).
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! sampled values but not a minimal counterexample), no persistence
//! (`.proptest-regressions` files are ignored), and deterministic seeding
//! (case `i` of every test always draws the same values, so failures
//! reproduce across runs).
//!
//! Supported surface: `proptest!` with `#![proptest_config(...)]`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `prop_oneof!`,
//! [`strategy::Just`], [`arbitrary::any`], integer/float range strategies,
//! tuple strategies (arity 2–8), [`collection::vec`] with exact or ranged
//! sizes, `&str` regex-subset strategies like `"[a-z0-9_]{1,12}"`, and
//! `Strategy::prop_map`/`boxed`.

pub mod test_runner {
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    /// Per-test configuration (mirrors `proptest::test_runner::ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG handed to strategies. Seeded per case index so runs are
    /// reproducible without persistence files.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        pub fn for_case(case: u64) -> Self {
            TestRng(SmallRng::seed_from_u64(
                0x70f7_7e57_u64 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of random values (mirrors `proptest::strategy::Strategy`,
    /// minus shrinking).
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy (mirrors `proptest::strategy::BoxedStrategy`).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Uniform choice among alternative strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// `"[a-z0-9_]{1,12}"`-style regex-subset string strategies.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (mirrors `proptest::arbitrary::Arbitrary`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rand::Rng::gen(rng)
                }
            }
        )*};
    }
    impl_arbitrary_via_standard!(
        u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64
    );

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for collection strategies; built from an exact
    /// `usize` or a `usize` range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;

    enum Atom {
        /// Candidate characters (expanded from a literal or a `[...]` class).
        Class(Vec<char>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut set = Vec::new();
                    while let Some(&k) = chars.peek() {
                        if k == ']' {
                            chars.next();
                            break;
                        }
                        let lo = chars.next().expect("unterminated char class");
                        if chars.peek() == Some(&'-')
                            && chars.clone().nth(1).map(|x| x != ']').unwrap_or(false)
                        {
                            chars.next(); // consume '-'
                            let hi = chars.next().expect("unterminated range");
                            for v in lo as u32..=hi as u32 {
                                if let Some(ch) = char::from_u32(v) {
                                    set.push(ch);
                                }
                            }
                        } else {
                            set.push(lo);
                        }
                    }
                    assert!(!set.is_empty(), "empty character class in {pattern:?}");
                    Atom::Class(set)
                }
                '\\' => Atom::Class(vec![chars.next().expect("dangling escape")]),
                other => Atom::Class(vec![other]),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for k in chars.by_ref() {
                    if k == '}' {
                        break;
                    }
                    spec.push(k);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Sample a string matching a regex-subset `pattern`: literal
    /// characters, `[...]` classes with ranges, and `{n}` / `{m,n}`
    /// repetition.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = rng.gen_range(piece.min..=piece.max);
            let Atom::Class(set) = &piece.atom;
            for _ in 0..count {
                out.push(set[rng.gen_range(0..set.len())]);
            }
        }
        out
    }
}

/// Run each property as a `#[test]` over `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __proptest_config: $crate::test_runner::ProptestConfig = $cfg;
            for __proptest_case in 0..__proptest_config.cases as u64 {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(__proptest_case);
                $(let $arg = $crate::strategy::Strategy::sample(
                    &($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}

/// Assert inside a property; reports via panic (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Commonly imported names (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_runner::TestRng::for_case(1);
        for _ in 0..200 {
            let s = crate::string::sample_pattern("[a-z0-9_]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::test_runner::TestRng::for_case(2);
        let exact = crate::collection::vec(any::<u8>(), 9);
        assert_eq!(exact.sample(&mut rng).len(), 9);
        let ranged = crate::collection::vec(0u32..5, 1..4);
        for _ in 0..100 {
            let v = ranged.sample(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = crate::test_runner::TestRng::for_case(3);
        let s = prop_oneof![Just(1u8), Just(2), Just(3)].prop_map(|v| v * 10);
        for _ in 0..50 {
            assert!([10, 20, 30].contains(&s.sample(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(
            v in crate::collection::vec(any::<u8>(), 0..32),
            x in 1usize..10,
            f in -1.0f64..1.0,
        ) {
            prop_assert!(v.len() < 32);
            prop_assert!((1..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x as i64, -1);
        }
    }
}
