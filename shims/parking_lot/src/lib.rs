//! Offline stand-in for `parking_lot`, backed by `std::sync` (see
//! `shims/README.md`). Matches the subset of the API this workspace uses:
//! non-poisoning `Mutex`/`RwLock` whose guards come from `lock()`,
//! `read()` and `write()` without a `Result` wrapper.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion lock; `lock()` returns the guard directly and a
/// poisoned lock (a panic while held) is transparently recovered.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with the same non-poisoning guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn recovers_from_poison() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
