//! Offline stand-in for `criterion` (see `shims/README.md`).
//!
//! A minimal timing harness: every bench registered through the familiar
//! `criterion_group!`/`criterion_main!`/`bench_function` surface runs for
//! a handful of timed iterations and prints mean per-iteration time (plus
//! throughput when configured). No statistics, no HTML reports, no
//! baselines. When the binary is invoked by `cargo test` (a `--test`
//! flag is passed), each bench runs a single iteration as a smoke check.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation used to report rates alongside times.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Things accepted as a benchmark name: strings or [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

/// Timing context handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Hand full control of timing to the closure: it receives the
    /// iteration count and returns the elapsed time it measured.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        self.elapsed = routine(self.iters);
    }
}

/// Top-level harness (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--test` is how cargo invokes harness=false bench targets
        // during `cargo test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 10, test_mode }
    }
}

impl Criterion {
    /// Iterations per measurement (consuming form, used in
    /// `criterion_group!` `config = ...` clauses).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: None }
    }

    /// Run a standalone bench.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_benchmark_id();
        let iters = effective_iters(self.sample_size, self.test_mode);
        run_one(&name, None, iters, f);
        self
    }
}

fn effective_iters(sample_size: usize, test_mode: bool) -> u64 {
    if test_mode {
        1
    } else {
        sample_size as u64
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    iters: u64,
    mut f: F,
) {
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = if iters > 0 { bencher.elapsed / iters as u32 } else { Duration::ZERO };
    match throughput {
        Some(Throughput::Bytes(bytes)) if per_iter > Duration::ZERO => {
            let rate = bytes as f64 / per_iter.as_secs_f64() / (1 << 20) as f64;
            println!("bench {name}: {per_iter:?}/iter ({rate:.1} MiB/s)");
        }
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("bench {name}: {per_iter:?}/iter ({rate:.0} elem/s)");
        }
        _ => println!("bench {name}: {per_iter:?}/iter"),
    }
}

/// A named group of benches sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn iters(&self) -> u64 {
        effective_iters(
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
        )
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&name, self.throughput, self.iters(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&name, self.throughput, self.iters(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Bundle bench functions into a group runner (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls >= 1);
    }

    #[test]
    fn group_runs_with_throughput_and_custom_timing() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(2);
        let mut seen_iters = 0;
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                seen_iters = iters;
                Duration::from_micros(5 * iters)
            });
        });
        group.bench_with_input(BenchmarkId::from_parameter("p1"), &7usize, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        assert!(seen_iters >= 1);
    }
}
