//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! behind the `ChaCha8Rng` name (see `shims/README.md`). Deterministic per
//! seed; not guaranteed bit-compatible with upstream `rand_chacha`
//! (nothing in this repository depends on upstream streams).

use rand::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds for the "8" variant.
const DOUBLE_ROUNDS: usize = 4;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha8 pseudo-random generator (8-round ChaCha keystream).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + nonce schedule (the constant/key/counter/nonce block).
    initial: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.initial;
        for _ in 0..DOUBLE_ROUNDS {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(self.initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = working;
        self.index = 0;
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.initial[12].overflowing_add(1);
        self.initial[12] = lo;
        if carry {
            self.initial[13] = self.initial[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut initial = [0u32; 16];
        // "expand 32-byte k" constants.
        initial[0] = 0x6170_7865;
        initial[1] = 0x3320_646e;
        initial[2] = 0x7962_2d32;
        initial[3] = 0x6b20_6574;
        for i in 0..8 {
            initial[4 + i] =
                u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        // Counter (12, 13) and nonce (14, 15) start at zero.
        ChaCha8Rng { initial, block: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.block[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(0xFA57);
        let mut b = ChaCha8Rng::seed_from_u64(0xFA57);
        let va: Vec<u32> = (0..100).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..100).map(|_| b.next_u32()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(0xFA58);
        let vc: Vec<u32> = (0..100).map(|_| c.next_u32()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn keystream_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second, "counter must advance the keystream");
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v: u8 = rng.gen_range(0..16);
        assert!(v < 16);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[(rng.next_u32() >> 29) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b} far from uniform");
        }
    }
}
