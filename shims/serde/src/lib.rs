//! Offline stand-in for `serde` (see `shims/README.md`).
//!
//! Declares the `Serialize`/`Deserialize` trait names and, behind the
//! `derive` feature, re-exports the no-op derive macros. The workspace
//! only derives the traits to keep types serde-ready; no code path
//! serializes through serde, so the traits carry no methods.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
