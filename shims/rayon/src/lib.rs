//! Offline stand-in for `rayon` (see `shims/README.md`).
//!
//! `into_par_iter()` here returns the ordinary sequential iterator, so
//! all downstream adapters (`enumerate`, `map`, `collect`, …) are the
//! std ones. Results are identical to the data-parallel versions — the
//! workspace only uses order-preserving adapters — just not parallel.

/// Conversion into a "parallel" (here: sequential) iterator.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Commonly imported names (mirrors `rayon::prelude`).
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn order_preserving_map_collect() {
        let v: Vec<usize> =
            (0..100).collect::<Vec<_>>().into_par_iter().enumerate().map(|(i, x)| i + x).collect();
        assert_eq!(v, (0..100).map(|x| 2 * x).collect::<Vec<_>>());
    }
}
