//! Offline stand-in for `crossbeam-channel` (see `shims/README.md`).
//!
//! Multi-producer multi-consumer channels built on `Mutex` + `Condvar`.
//! The crucial API property this workspace relies on — and which
//! `std::sync::mpsc` lacks — is that [`Receiver`] is `Clone`: `mpi-sim`
//! hands clones of a rank's receiving endpoint to sibling threads.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the rejected message back to the caller.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender has been dropped.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Sender::try_send`]: the message comes back in the
/// variant, exactly like the upstream crate.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The bounded channel is full but receivers remain.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// Channel is currently empty but senders remain.
    Empty,
    /// Channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`] / [`Receiver::recv_deadline`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// Channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message arrives or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when a bounded queue drains or the last receiver leaves.
    not_full: Condvar,
    capacity: Option<usize>,
}

/// Create a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Create a channel holding at most `cap` queued messages; `send` blocks
/// while the queue is full. `cap` of zero is treated as one (true
/// rendezvous semantics are not needed by this workspace).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// The sending half; clone freely.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Queue a message, blocking while a bounded channel is full. Fails
    /// only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.shared.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Queue a message if the channel has room, without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders += 1;
        drop(state);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake all receivers so they can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half; clone freely — clones share one queue and steal
/// from each other (mpmc), exactly like the upstream crate.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pop a message if one is queued, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Block until a message arrives, every sender drops, or `timeout`
    /// elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        match Instant::now().checked_add(timeout) {
            Some(deadline) => self.recv_deadline(deadline),
            // Effectively infinite timeout.
            None => self.recv().map_err(|_| RecvTimeoutError::Disconnected),
        }
    }

    /// Block until a message arrives, every sender drops, or `deadline`
    /// passes.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Blocking iterator over received messages; ends when the channel
/// disconnects.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Borrowing blocking iterator (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Receiver<T> {
    /// Blocking iterator over messages until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers += 1;
        drop(state);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Wake blocked senders so they can observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_full_then_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn cloned_receivers_steal_from_one_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(10).unwrap();
        tx.send(20).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [10, 20]);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_expires_and_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn cross_thread_throughput() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut n = 0;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(rx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
