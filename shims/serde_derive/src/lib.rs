//! Offline stand-in for `serde_derive` (see `shims/README.md`).
//!
//! The workspace only *derives* `Serialize`/`Deserialize` to keep its data
//! types serde-ready; nothing actually serializes through serde at build
//! time. These derives therefore expand to nothing, which keeps every
//! `#[derive(Serialize, Deserialize)]` compiling without syn/quote.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
