//! Integration: the I/O trace recorder captures the §II-B workload
//! profile of a real training run — metadata-heavy at enumeration,
//! read-heavy in steady state.

use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::train::epoch::{run_epochs, EpochConfig};

fn dataset(n: usize) -> Vec<(String, Vec<u8>)> {
    (0..n).map(|i| (format!("tr/d{}/f{i:02}.bin", i % 3), vec![i as u8; 2048])).collect()
}

#[test]
fn trace_captures_training_workload_shape() {
    let packed = prepare(dataset(9), &PrepConfig::default());
    let cfg = EpochConfig {
        root: "tr".into(),
        batch_per_node: 3,
        epochs: 2,
        checkpoint_every: 2,
        checkpoint_bytes: 512,
        seed: 4,
        prefetch: None,
    };
    let summaries = FanStore::run(
        ClusterConfig { trace_ring: 4096, ..Default::default() },
        packed.partitions,
        |fs| {
            run_epochs(fs, &cfg).unwrap();
            fs.trace().expect("tracing enabled").summary()
        },
    );
    let s = summaries[0];
    // Enumeration: readdir for root + 3 subdirs + stat per file (9) and
    // per dir visit; the epoch loop re-enumerates once.
    assert!(s.readdirs >= 4, "readdirs {}", s.readdirs);
    assert!(s.stats >= 9, "stats {}", s.stats);
    // Steady state: every file opened/closed/read once per epoch.
    assert_eq!(s.opens, 18, "9 files x 2 epochs");
    // Each file: one data read + one EOF read.
    assert!(s.reads >= 18);
    assert_eq!(s.bytes_read, 9 * 2048 * 2);
    // One checkpoint publish through the ckpt store: a segment object
    // plus the generation manifest written last (the publish point).
    assert_eq!(s.writes, 2);
    assert!(s.bytes_written > 0, "segment + manifest carry the stored checkpoint");
}

#[test]
fn trace_serialization_is_replayable() {
    let packed = prepare(dataset(3), &PrepConfig::default());
    let text = FanStore::run(
        ClusterConfig { trace_ring: 64, ..Default::default() },
        packed.partitions,
        |fs| {
            for (path, _) in &dataset(3) {
                let data = fs.read_whole(path).unwrap();
                std::hint::black_box(&data);
            }
            fs.trace().unwrap().serialize()
        },
    )
    .remove(0);
    let events = fanstore_repro::store::trace::TraceRecorder::parse(&text).unwrap();
    assert!(!events.is_empty());
    // read_whole does not allocate fds, so the ring holds no open events;
    // parse-ability and byte accounting are what matter here.
    let read_bytes: u64 = events
        .iter()
        .filter(|e| e.op == fanstore_repro::store::trace::Op::Read)
        .map(|e| e.bytes)
        .sum();
    let _ = read_bytes;
}

#[test]
fn get_many_mints_one_request_id_and_spans_join_across_ranks() {
    // One `read_many` call = one batch request id. The `client.get_many`
    // span is the root; every per-rank GetMany RPC records a `fabric.rpc`
    // child under the same id on the calling rank, and the serving ranks
    // stamp `daemon.serve` spans with it — so `fanstore trace dump` can
    // join the whole batch back together across recorders.
    let files = dataset(16);
    let packed = prepare(files.clone(), &PrepConfig { partitions: 4, ..Default::default() });
    let per_rank = FanStore::run(
        ClusterConfig { nodes: 4, trace_ring: 8192, ..Default::default() },
        packed.partitions,
        |fs| {
            let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
            for r in fs.read_many(&paths) {
                r.expect("batched read");
            }
            (fs.state().rank, fs.trace().expect("trace ring on").spans())
        },
    );
    let all_spans: Vec<&fanstore_repro::store::trace::SpanEvent> =
        per_rank.iter().flat_map(|(_, s)| s).collect();
    for (rank, spans) in &per_rank {
        let batch: Vec<_> = spans.iter().filter(|s| s.stage == "client.get_many").collect();
        assert_eq!(batch.len(), 1, "rank {rank}: one read_many call, one batch span");
        let root = batch[0];
        assert_ne!(root.request, 0, "rank {rank}: batch span carries a real request id");
        // Child RPCs on the same rank ride the batch's id and nest inside
        // the root span's window.
        let rpcs: Vec<_> =
            spans.iter().filter(|s| s.stage == "fabric.rpc" && s.request == root.request).collect();
        assert!(!rpcs.is_empty(), "rank {rank}: 12 remote files need at least one GetMany RPC");
        for rpc in &rpcs {
            assert!(
                rpc.start_us >= root.start_us
                    && rpc.start_us + rpc.dur_us <= root.start_us + root.dur_us,
                "rank {rank}: fabric.rpc child outside its client.get_many root"
            );
        }
        // The serve side of at least one of those RPCs landed on a
        // *different* rank's recorder with the same id.
        assert!(
            all_spans.iter().any(|s| s.stage == "daemon.serve"
                && s.request == root.request
                && s.rank as usize != *rank),
            "rank {rank}: no cross-rank daemon.serve joined to batch {:#x}",
            root.request
        );
        // Deferred decompression also reports under the batch id.
        assert!(
            spans.iter().any(|s| s.stage == "client.decompress" && s.request == root.request),
            "rank {rank}: batched entries decompress under the batch id"
        );
    }
    // Request ids are distinct per batch (per rank), so joins never blur
    // two batches together.
    let mut ids: Vec<u64> = per_rank
        .iter()
        .flat_map(|(_, s)| s.iter())
        .filter(|s| s.stage == "client.get_many")
        .map(|s| s.request)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), per_rank.len(), "one unique batch id per rank");
}

#[test]
fn tracing_disabled_by_default() {
    let packed = prepare(dataset(1), &PrepConfig::default());
    FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
        assert!(fs.trace().is_none());
    });
}
