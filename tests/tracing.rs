//! Integration: the I/O trace recorder captures the §II-B workload
//! profile of a real training run — metadata-heavy at enumeration,
//! read-heavy in steady state.

use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::train::epoch::{run_epochs, EpochConfig};

fn dataset(n: usize) -> Vec<(String, Vec<u8>)> {
    (0..n).map(|i| (format!("tr/d{}/f{i:02}.bin", i % 3), vec![i as u8; 2048])).collect()
}

#[test]
fn trace_captures_training_workload_shape() {
    let packed = prepare(dataset(9), &PrepConfig::default());
    let cfg = EpochConfig {
        root: "tr".into(),
        batch_per_node: 3,
        epochs: 2,
        checkpoint_every: 2,
        checkpoint_bytes: 512,
        seed: 4,
    };
    let summaries = FanStore::run(
        ClusterConfig { trace_ring: 4096, ..Default::default() },
        packed.partitions,
        |fs| {
            run_epochs(fs, &cfg).unwrap();
            fs.trace().expect("tracing enabled").summary()
        },
    );
    let s = summaries[0];
    // Enumeration: readdir for root + 3 subdirs + stat per file (9) and
    // per dir visit; the epoch loop re-enumerates once.
    assert!(s.readdirs >= 4, "readdirs {}", s.readdirs);
    assert!(s.stats >= 9, "stats {}", s.stats);
    // Steady state: every file opened/closed/read once per epoch.
    assert_eq!(s.opens, 18, "9 files x 2 epochs");
    // Each file: one data read + one EOF read.
    assert!(s.reads >= 18);
    assert_eq!(s.bytes_read, 9 * 2048 * 2);
    // One checkpoint publish through the ckpt store: a segment object
    // plus the generation manifest written last (the publish point).
    assert_eq!(s.writes, 2);
    assert!(s.bytes_written > 0, "segment + manifest carry the stored checkpoint");
}

#[test]
fn trace_serialization_is_replayable() {
    let packed = prepare(dataset(3), &PrepConfig::default());
    let text = FanStore::run(
        ClusterConfig { trace_ring: 64, ..Default::default() },
        packed.partitions,
        |fs| {
            for (path, _) in &dataset(3) {
                let data = fs.read_whole(path).unwrap();
                std::hint::black_box(&data);
            }
            fs.trace().unwrap().serialize()
        },
    )
    .remove(0);
    let events = fanstore_repro::store::trace::TraceRecorder::parse(&text).unwrap();
    assert!(!events.is_empty());
    // read_whole does not allocate fds, so the ring holds no open events;
    // parse-ability and byte accounting are what matter here.
    let read_bytes: u64 = events
        .iter()
        .filter(|e| e.op == fanstore_repro::store::trace::Op::Read)
        .map(|e| e.bytes)
        .sum();
    let _ = read_bytes;
}

#[test]
fn tracing_disabled_by_default() {
    let packed = prepare(dataset(1), &PrepConfig::default());
    FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
        assert!(fs.trace().is_none());
    });
}
