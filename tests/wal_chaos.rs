//! Crash-point matrix for the durable write path: kill the "daemon"
//! anywhere — mid-append, between WAL append and memtable flush, inside
//! a segment write, inside a manifest publish, during the post-publish
//! log trim — and recovery must yield the newest acknowledged state.
//!
//! The kill is a [`CrashMedia`] power cut at a deterministic mutation
//! byte: the in-flight append lands torn, whole-object writes (segments,
//! manifests) land atomically or not at all, and every later sync fails
//! so nothing past the cut can be acknowledged. A scripted seeded
//! workload runs to the cut, recording which writes were acknowledged
//! (the store returned `Ok`); then the store reopens on the surviving
//! medium and three invariants hold:
//!
//! 1. **Acknowledged writes are readable** — every key's newest
//!    acknowledged version comes back byte-exact.
//! 2. **Recovery is a prefix** — the recovered state equals the scripted
//!    state replayed up to the recovered sequence, which is at least the
//!    last acknowledged one. No holes, no reordering, no torn records.
//!    (An unacknowledged record may survive only as part of that prefix
//!    — fsync is a durability lower bound, exactly like a real disk.)
//! 3. **Determinism** — same seed, same cut ⇒ byte-identical recovered
//!    state *and* byte-identical bytes on the medium, across runs.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::metrics::MetricsRegistry;
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::store::wal::{CrashMedia, Lookup, RamMedia, WalConfig, WalMedia, WalStore};

const SEED: u64 = 0x0A17_C4A5;

/// The scripted operations: every op appends exactly one WAL record, so
/// op `i` carries sequence `i + 1` and "recovered prefix of length k"
/// means "ops 0..k applied".
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Put { key: String, value: Vec<u8> },
    Unlink { key: String },
}

/// Seeded workload over a small key universe: puts, overwrites and
/// unlinks, sized so the memtable budget forces several flushes and the
/// segment threshold forces at least one compaction.
fn script(seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let keys: Vec<String> = (0..12).map(|i| format!("out/obj-{i:02}.bin")).collect();
    (0..ops)
        .map(|i| {
            let key = keys[rng.gen_range(0..keys.len())].clone();
            if rng.gen_ratio(1, 5) && i > 4 {
                Op::Unlink { key }
            } else {
                let len = rng.gen_range(16..400usize);
                let fill = rng.gen::<u8>();
                // Compressible-ish but position-dependent so versions
                // are distinguishable byte-for-byte.
                let value = (0..len).map(|j| fill.wrapping_add((j / 7) as u8)).collect::<Vec<u8>>();
                Op::Put { key, value }
            }
        })
        .collect()
}

fn crash_cfg() -> WalConfig {
    WalConfig {
        memtable_budget: 1200,   // several flushes over ~90 ops
        commit_every: 1,         // Ok return == acknowledged durable
        compact_min_segments: 3, // compactions happen under the gun
        sync_cost: Duration::ZERO,
        ..WalConfig::default()
    }
}

/// Run the scripted workload against a store on `media`. Returns how
/// many leading ops were acknowledged (every op past the first failure
/// keeps failing: the medium is dead).
fn run_script(store: &WalStore, ops: &[Op]) -> usize {
    let mut acked = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let result = match op {
            Op::Put { key, value } => store.put(key, value.clone()),
            Op::Unlink { key } => store.unlink(key),
        };
        if result.is_ok() {
            assert_eq!(acked, i, "an op after a failed one must not be acknowledged");
            acked += 1;
        }
    }
    acked
}

/// The reference *live* state after applying the first `k` ops: only
/// keys whose newest version is a put. An unlinked key is simply absent
/// — whether the store reports it as a tombstone or (post-compaction,
/// once the tombstone itself is dropped) as a miss is an implementation
/// detail both meaning "no such file".
fn state_after(ops: &[Op], k: usize) -> BTreeMap<String, Vec<u8>> {
    let mut state = BTreeMap::new();
    for op in &ops[..k] {
        match op {
            Op::Put { key, value } => {
                state.insert(key.clone(), value.clone());
            }
            Op::Unlink { key } => {
                state.remove(key);
            }
        }
    }
    state
}

/// Read back every key of the universe from a recovered store; a
/// tombstone and a miss are both "absent".
fn recovered_state(store: &WalStore, ops: &[Op]) -> BTreeMap<String, Vec<u8>> {
    let mut keys: Vec<&String> = ops
        .iter()
        .map(|op| match op {
            Op::Put { key, .. } | Op::Unlink { key } => key,
        })
        .collect();
    keys.sort();
    keys.dedup();
    let mut state = BTreeMap::new();
    for key in keys {
        match store.get(key).expect("recovered store reads") {
            Lookup::Hit(v) => {
                state.insert(key.clone(), (*v).clone());
            }
            Lookup::Tombstone | Lookup::Miss => {}
        }
    }
    state
}

/// One full crash run: workload against a cut medium, then recovery on
/// the surviving bytes. Returns (acked ops, recovered seq, recovered
/// state, surviving media bytes).
#[allow(clippy::type_complexity)]
fn crash_run(
    ops: &[Op],
    cut_bytes: u64,
) -> (usize, u64, BTreeMap<String, Vec<u8>>, BTreeMap<String, Vec<u8>>) {
    let disk = RamMedia::new(Duration::ZERO);
    let crash = CrashMedia::new(disk.clone(), cut_bytes);
    let (store, replay) =
        WalStore::open(crash, crash_cfg(), &MetricsRegistry::new()).expect("open on empty medium");
    assert_eq!(replay.records, 0);
    let acked = run_script(&store, ops);
    drop(store); // the process dies; only the medium survives
    let (recovered, replay) =
        WalStore::open(disk.clone() as Arc<dyn WalMedia>, crash_cfg(), &MetricsRegistry::new())
            .expect("recovery must open whatever survived the cut");
    let state = recovered_state(&recovered, ops);
    let media: BTreeMap<String, Vec<u8>> =
        disk.list().into_iter().filter_map(|n| disk.read(&n).map(|b| (n, b))).collect();
    (acked, replay.durable_seq, state, media)
}

#[test]
fn kill_anywhere_recovers_newest_acknowledged_state() {
    let ops = script(SEED, 90);
    // Measure the workload's total mutation bytes with an uncuttable
    // medium, then sweep cuts across the whole range.
    let (acked, seq, full_state, _) = crash_run(&ops, u64::MAX);
    assert_eq!(acked, ops.len(), "no cut: everything acknowledged");
    assert_eq!(seq, ops.len() as u64);
    assert_eq!(full_state, state_after(&ops, ops.len()));

    let disk = RamMedia::new(Duration::ZERO);
    let probe = CrashMedia::new(disk, u64::MAX / 2);
    let (store, _) = WalStore::open(probe.clone(), crash_cfg(), &MetricsRegistry::new()).unwrap();
    run_script(&store, &ops);
    let total = u64::MAX / 2 - probe.remaining();
    assert!(total > 2000, "workload must actually mutate the medium ({total} bytes)");

    // ~60 cut points spread over every phase of the store's life, plus
    // the degenerate edges.
    let step = (total / 57).max(1);
    let mut cuts: Vec<u64> = (0..total).step_by(step as usize).collect();
    cuts.extend([0, 1, total - 1, total]);
    for cut in cuts {
        let ops = ops.clone();
        let (acked, seq, state, _) = crash_run(&ops, cut);
        assert!(
            seq >= acked as u64,
            "cut {cut}: recovered seq {seq} loses acknowledged op {acked}"
        );
        assert!(
            seq <= ops.len() as u64,
            "cut {cut}: recovered seq {seq} exceeds the {} scripted ops",
            ops.len()
        );
        // Prefix consistency: the recovered state is exactly the script
        // replayed to the recovered sequence — which covers invariant 1
        // (acked ⊆ prefix) and invariant 2 (nothing torn, no holes).
        assert_eq!(
            state,
            state_after(&ops, seq as usize),
            "cut {cut}: recovered state is not the length-{seq} prefix"
        );
    }
}

#[test]
fn same_seed_same_cut_is_byte_identical_across_runs() {
    let ops = script(SEED, 90);
    // A mid-flight cut chosen to land inside the interesting region
    // (after several flushes, before the workload ends).
    let (_, _, s0, m0) = crash_run(&ops, 9_001);
    for run in 1..3 {
        let (_, _, s, m) = crash_run(&ops, 9_001);
        assert_eq!(s, s0, "run {run}: recovered state diverged");
        assert_eq!(m, m0, "run {run}: surviving media bytes diverged");
    }
}

#[test]
fn negative_lookups_do_zero_segment_reads() {
    let registry = MetricsRegistry::new();
    let media = RamMedia::new(Duration::ZERO);
    let cfg = WalConfig { bloom_fp: 0.0001, ..crash_cfg() };
    let (store, _) = WalStore::open(media, cfg, &registry).unwrap();
    let ops = script(SEED ^ 0xB100_F11E, 60);
    run_script(&store, &ops);
    store.flush().unwrap();
    let reads_before = store.metrics().segment_reads.get();
    for i in 0..200 {
        assert!(
            matches!(store.get(&format!("never/written-{i}")).unwrap(), Lookup::Miss),
            "key {i} was never written"
        );
    }
    assert_eq!(
        store.metrics().segment_reads.get(),
        reads_before,
        "a negative lookup must never touch segment data"
    );
    assert!(
        store.metrics().bloom_negative.get() >= 200,
        "every probe should be answered by bloom filters"
    );
}

/// Daemon-restart wiring through the cluster runtime: run one cluster
/// with a WAL on a shared medium, write output files, tear the cluster
/// down, start a fresh one on the same medium — the writes must be
/// readable again (WAL replay into the new daemon's store), and the
/// write-path counters must have registered the traffic.
#[test]
fn cluster_restart_replays_wal_into_fresh_daemons() {
    let files: Vec<(String, Vec<u8>)> =
        (0..4).map(|i| (format!("in/f{i}.bin"), vec![i as u8; 512])).collect();
    let packed = prepare(files, &PrepConfig { partitions: 2, ..Default::default() });
    let media: Vec<Arc<RamMedia>> = (0..2).map(|_| RamMedia::new(Duration::ZERO)).collect();
    let wal_cfg = WalConfig { sync_cost: Duration::ZERO, ..WalConfig::default() };

    let cluster = |m: &Vec<Arc<RamMedia>>| ClusterConfig {
        nodes: 2,
        wal: Some(wal_cfg.clone()),
        wal_media: Some(m.clone()),
        ..Default::default()
    };

    // First life: write one output file per rank (plus one that gets
    // unlinked, which must stay dead after the restart).
    let written = FanStore::run(cluster(&media), packed.partitions.clone(), |fs| {
        let path = format!("out/rank{}.bin", fs.rank());
        let body = format!("durable payload from rank {} ", fs.rank()).repeat(30).into_bytes();
        fs.write_whole(&path, &body).expect("write");
        let doomed = format!("out/doomed{}.bin", fs.rank());
        fs.write_whole(&doomed, b"to be unlinked").expect("write doomed");
        fs.unlink(&doomed).expect("unlink");
        assert!(fs.state().stats.write_count.get() >= 2, "write counters registered");
        assert!(fs.state().stats.write_bytes.get() >= body.len() as u64);
        body
    });

    // Second life: fresh cluster, same media. The write-store maps start
    // empty; reads must be served from the replayed WAL.
    let read_back = FanStore::run(cluster(&media), packed.partitions, |fs| {
        let path = format!("out/rank{}.bin", fs.rank());
        let body = fs.read_whole(&path).expect("restart must recover the acknowledged write");
        let doomed = format!("out/doomed{}.bin", fs.rank());
        assert!(
            fs.read_whole(&doomed).is_err(),
            "the unlinked file must stay dead across the restart"
        );
        let wal = fs.state().wal.as_ref().expect("wal attached");
        assert!(wal.durable_seq() >= 3, "replay recovered the previous life's records");
        body
    });
    assert_eq!(written, read_back, "recovered bytes must match what was acknowledged");
}
