//! Integration: the disk (SSD) backend and the checkpoint/resume
//! workflow, end to end across crates.

use fanstore_repro::store::backend::BackendKind;
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::train::epoch::{run_epoch_range, EpochConfig};
use fanstore_repro::train::prefetch::{prefetched_epoch, PrefetchConfig};
use fanstore_repro::train::resume::{latest_checkpoint_epoch, run_epochs_resuming};

fn dataset(n: usize) -> Vec<(String, Vec<u8>)> {
    (0..n)
        .map(|i| (format!("ds/c{}/f{i:03}.bin", i % 2), format!("x{i}").repeat(300).into_bytes()))
        .collect()
}

#[test]
fn disk_backend_serves_identical_bytes() {
    let files = dataset(10);
    let packed = prepare(files.clone(), &PrepConfig { partitions: 2, ..Default::default() });
    let results = FanStore::run(
        ClusterConfig { nodes: 2, backend: BackendKind::DiskTemp, ..Default::default() },
        packed.partitions,
        |fs| files.iter().all(|(p, d)| &fs.read_whole(p).unwrap() == d),
    );
    assert_eq!(results, vec![true, true]);
}

#[test]
fn disk_backend_supports_epochs_and_prefetch() {
    let files = dataset(12);
    let total: u64 = files.iter().map(|(_, d)| d.len() as u64).sum();
    let packed = prepare(files.clone(), &PrepConfig { partitions: 2, ..Default::default() });
    let results = FanStore::run(
        ClusterConfig { nodes: 2, backend: BackendKind::DiskTemp, ..Default::default() },
        packed.partitions,
        |fs| {
            let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
            let cfg = PrefetchConfig {
                io_threads: 2,
                queue_batches: 2,
                batch_size: 4,
                rpc_batch: 0,
                tenant: 0,
            };
            prefetched_epoch(fs, &paths, &cfg, |_| {}).unwrap()
        },
    );
    assert_eq!(results, vec![total, total]);
}

#[test]
fn capacity_constrained_cluster_rejects_oversized_assignment() {
    let files = dataset(6);
    let packed = prepare(files, &PrepConfig { partitions: 1, ..Default::default() });
    let size = packed.partitions[0].len() as u64;
    // Capacity below the single partition: placement must refuse.
    let result = std::panic::catch_unwind(|| {
        FanStore::run(
            ClusterConfig { nodes: 1, node_capacity: Some(size / 2), ..Default::default() },
            packed.partitions.clone(),
            |_fs| 0usize,
        )
    });
    assert!(result.is_err(), "oversized assignment must be rejected");
}

#[test]
fn capacity_clamps_replication_but_still_runs() {
    let files = dataset(8);
    let packed = prepare(files.clone(), &PrepConfig { partitions: 4, ..Default::default() });
    let max_part = packed.partitions.iter().map(Vec::len).max().unwrap() as u64;
    // Capacity fits ~2 partitions: ask for full replication, get 1 extra
    // round at most; reads must still all succeed.
    let results = FanStore::run(
        ClusterConfig {
            nodes: 4,
            replication: 4,
            node_capacity: Some(max_part * 2 + 64),
            ..Default::default()
        },
        packed.partitions,
        |fs| files.iter().all(|(p, d)| &fs.read_whole(p).unwrap() == d),
    );
    assert_eq!(results, vec![true; 4]);
}

#[test]
fn multi_node_resume_continues_numbering() {
    let files = dataset(8);
    let packed = prepare(files, &PrepConfig { partitions: 2, ..Default::default() });
    let cfg = EpochConfig {
        root: "ds".into(),
        batch_per_node: 4,
        epochs: 4,
        checkpoint_every: 1,
        checkpoint_bytes: 64,
        seed: 5,
        prefetch: None,
    };
    let results =
        FanStore::run(ClusterConfig { nodes: 2, ..Default::default() }, packed.partitions, |fs| {
            // First allocation: 1 epoch, then "crash".
            run_epoch_range(fs, &cfg, 0, 1).unwrap();
            assert_eq!(latest_checkpoint_epoch(fs).unwrap(), Some(1));
            // Resume to completion.
            let (report, from) = run_epochs_resuming(fs, &cfg).unwrap();
            (from, report.checkpoints, latest_checkpoint_epoch(fs).unwrap())
        });
    for (from, checkpoints, latest) in results {
        assert_eq!(from, 1);
        assert_eq!(checkpoints, 3);
        assert_eq!(latest, Some(4));
    }
}
