//! Concurrency integration tests: many I/O threads per node sharing one
//! client (the Keras 4-threads-per-process pattern of §II-B1), hammering
//! local and remote opens while the cache churns.

use std::sync::atomic::{AtomicU64, Ordering};

use fanstore_repro::compress::crc32::crc32;
use fanstore_repro::store::cache::CacheConfig;
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};

fn dataset(n: usize) -> Vec<(String, Vec<u8>)> {
    (0..n)
        .map(|i| (format!("cc/f{i:03}.bin"), format!("content-{i}-").repeat(200 + i).into_bytes()))
        .collect()
}

#[test]
fn many_threads_share_one_client() {
    let files = dataset(12);
    let expected: Vec<(String, u32)> = files.iter().map(|(p, d)| (p.clone(), crc32(d))).collect();
    let packed = prepare(files, &PrepConfig { partitions: 2, ..Default::default() });

    let errors = FanStore::run(
        ClusterConfig {
            nodes: 2,
            // Small cache with eager release: maximum churn.
            cache: CacheConfig { capacity: 64 * 1024, release_on_zero: true, ..Default::default() },
            ..Default::default()
        },
        packed.partitions,
        |fs| {
            let errors = AtomicU64::new(0);
            std::thread::scope(|s| {
                for t in 0..4 {
                    let errors = &errors;
                    let expected = &expected;
                    s.spawn(move || {
                        for round in 0..8 {
                            for (i, (path, crc)) in expected.iter().enumerate() {
                                // Stagger threads across files.
                                if (i + t + round) % 2 == 0 {
                                    match fs.read_whole(path) {
                                        Ok(data) if crc32(&data) == *crc => {}
                                        _ => {
                                            errors.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                            }
                        }
                    });
                }
            });
            errors.load(Ordering::Relaxed)
        },
    );
    assert_eq!(errors, vec![0, 0], "no corrupted or failed reads under concurrency");
}

#[test]
fn concurrent_fd_tables_are_independent() {
    let files = dataset(4);
    let packed = prepare(files.clone(), &PrepConfig::default());
    FanStore::run(ClusterConfig::default(), packed.partitions, |fs| {
        std::thread::scope(|s| {
            for t in 0..4usize {
                let files = &files;
                s.spawn(move || {
                    let (path, expect) = &files[t];
                    let fd = fs.open(path).unwrap();
                    // Interleave small reads with other threads running.
                    let mut got = Vec::new();
                    let mut buf = [0u8; 97];
                    loop {
                        let n = fs.read(fd, &mut buf).unwrap();
                        if n == 0 {
                            break;
                        }
                        got.extend_from_slice(&buf[..n]);
                        std::thread::yield_now();
                    }
                    fs.close(fd).unwrap();
                    assert_eq!(&got, expect, "thread {t}");
                });
            }
        });
    });
}

#[test]
fn concurrent_writers_to_distinct_files() {
    let packed = prepare(dataset(2), &PrepConfig { partitions: 2, ..Default::default() });
    let counts =
        FanStore::run(ClusterConfig { nodes: 2, ..Default::default() }, packed.partitions, |fs| {
            std::thread::scope(|s| {
                for t in 0..4usize {
                    s.spawn(move || {
                        let path = format!("logs/rank{}/thread{t}.log", fs.rank());
                        fs.write_whole(&path, format!("thread {t} done").as_bytes()).unwrap();
                    });
                }
            });
            fs.state().stats.files_written.get()
        });
    assert_eq!(counts, vec![4, 4]);
}
