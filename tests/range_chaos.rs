//! Range chaos: at-rest single-chunk corruption against the byte-range
//! read path (DESIGN.md §10).
//!
//! One chunk of the owner's stored FCHK container is corrupted (the flip
//! position is a pure function of the seed); a clean replica lives one
//! ring step away. The chunk-level CRCs must confine the damage exactly:
//! ranges that do not cover the corrupted chunk read byte-exact from the
//! owner with zero recovery actions, ranges (and whole-file reads) that
//! do cover it fail the owner's at-rest CRC and fall back through the
//! replica ring — still returning exact bytes. Because every decision in
//! the run is deterministic, three same-seed runs must produce identical
//! degraded-read counters.
//!
//! `FanStore::run` hands every rank the same partition bytes, so an
//! at-rest divergence between owner and replica needs a hand-built
//! harness: this test wires the 3-rank cluster out of the same parts
//! `cluster.rs` uses (allgather, daemon thread, client), except rank 0
//! loads the corrupted partition copy and rank 1 the clean one.

use std::sync::Arc;
use std::time::Duration;

use fanstore_repro::mpi::launch;
use fanstore_repro::store::cache::CacheConfig;
use fanstore_repro::store::client::{FailoverConfig, FsClient};
use fanstore_repro::store::daemon::{serve, tags};
use fanstore_repro::store::node::NodeState;
use fanstore_repro::store::pack::{
    chunk_payload, parse_chunk_table, parse_partition, PartitionBuilder,
};
use fanstore_repro::store::prep::{prepare, PrepConfig};

const NODES: usize = 3;
const CHUNK: usize = 4096;
const NCHUNKS: usize = 16;
const PATH: &str = "rc/sample.bin";

/// Deterministic, mildly compressible file body.
fn body() -> Vec<u8> {
    (0..CHUNK * NCHUNKS)
        .map(|j| ((j / 11) as u8).wrapping_mul(31).wrapping_add(j as u8 & 7))
        .collect()
}

/// Build the clean partition and a copy with one seeded chunk corrupted.
/// Returns (clean, corrupted, victim chunk index). The victim avoids the
/// first and last chunk so windows can straddle its boundaries.
fn partitions(seed: u64) -> (Vec<u8>, Vec<u8>, usize) {
    let packed = prepare(
        vec![(PATH.to_string(), body())],
        &PrepConfig { partitions: 1, chunk_size: CHUNK, ..Default::default() },
    );
    let clean = packed.partitions.into_iter().next().expect("one partition");

    let entry = parse_partition(&clean).expect("partition parses").remove(0);
    let table = parse_chunk_table(&entry.data).expect("chunked entry");
    assert_eq!(table.chunks.len(), NCHUNKS, "test geometry");
    let victim = 1 + (seed as usize) % (NCHUNKS - 2);
    let at = table.payload_offset(victim)
        + ((seed >> 8) as usize) % table.chunks[victim].stored_len as usize;
    let flip = ((seed >> 16) as u8) | 1;

    let mut damaged = entry.data.clone();
    damaged[at] ^= flip;
    // The flip must be visible to the chunk CRC and invisible elsewhere.
    assert!(chunk_payload(&damaged, &table, victim).is_err(), "victim chunk must fail its CRC");
    assert!(
        chunk_payload(&damaged, &table, (victim + 1) % NCHUNKS).is_ok(),
        "neighbour chunks must stay intact"
    );

    let mut builder = PartitionBuilder::new();
    builder.push(&entry.path, entry.codec, &entry.stat, &damaged);
    (clean, builder.finish(), victim)
}

/// What rank 2 (the pure reader) observed in one run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    /// Non-covering windows that came back byte-exact.
    clean_ok: usize,
    /// Recovery counters after the non-covering phase — must be zero.
    crc_after_clean: u64,
    degraded_after_clean: u64,
    /// Covering reads (ranged + whole) that came back byte-exact.
    covered_ok: usize,
    /// Final recovery counters.
    crc_failures: u64,
    degraded_reads: u64,
    rpc_timeouts: u64,
    remote_bytes: u64,
}

/// Reads issued by rank 2. Phase A: one window strictly inside every
/// intact chunk. Phase B: a window straddling the victim's left boundary
/// (remote, must fail over), a window inside the victim (served from the
/// chunks cached by the failover), then whole-file reads (cold: replica
/// ring again; warm: cache).
fn reader_outcome(fs: &FsClient, data: &[u8], victim: usize) -> Outcome {
    let mut clean_ok = 0usize;
    for c in 0..NCHUNKS {
        if c == victim {
            continue;
        }
        let (a, b) = ((c * CHUNK + 3) as u64, ((c + 1) * CHUNK - 5) as u64);
        let got = fs.read_range(PATH, a, b).expect("non-covering range reads cleanly");
        assert_eq!(got, data[a as usize..b as usize], "chunk {c} window exact");
        clean_ok += 1;
    }
    let stats = &fs.state().stats;
    let crc_after_clean = stats.crc_failures.get();
    let degraded_after_clean = stats.degraded_reads.get();

    let mut covered_ok = 0usize;
    let span = ((victim * CHUNK - CHUNK / 3) as u64, (victim * CHUNK + CHUNK / 3) as u64);
    let inside = ((victim * CHUNK + CHUNK / 4) as u64, (victim * CHUNK + 3 * CHUNK / 4) as u64);
    for (a, b) in [span, inside] {
        let got = fs.read_range(PATH, a, b).expect("covering range recovers via replica");
        assert_eq!(got, data[a as usize..b as usize], "covering window [{a}, {b}) exact");
        covered_ok += 1;
    }
    for pass in 0..2 {
        let whole = fs.read_whole(PATH).expect("whole read recovers via replica");
        assert_eq!(whole, data, "whole file exact on pass {pass}");
        covered_ok += 1;
    }

    Outcome {
        clean_ok,
        crc_after_clean,
        degraded_after_clean,
        covered_ok,
        crc_failures: stats.crc_failures.get(),
        degraded_reads: stats.degraded_reads.get(),
        rpc_timeouts: stats.rpc_timeouts.get(),
        remote_bytes: stats.remote_bytes.get(),
    }
}

/// One full 3-rank run: rank 0 owns the (corrupted) partition, rank 1
/// holds the clean ring replica, rank 2 reads.
fn chaos_run(seed: u64) -> Outcome {
    let (clean, corrupted, victim) = partitions(seed);
    let data = body();
    let results = launch(NODES, 2, |mut ctx| {
        let mut control = ctx.take_channel(0);
        let service = ctx.take_channel(1);
        let service_remote = service.remote();
        let state = Arc::new(NodeState::new(ctx.rank, NODES, CacheConfig::default()));
        match ctx.rank {
            0 => drop(state.load_partition(&corrupted).expect("corrupted partition parses")),
            1 => drop(state.load_partition(&clean).expect("clean partition parses")),
            _ => {}
        }
        // Metadata allgather, as cluster startup does: rank 2 learns the
        // file exists and that rank 0 owns it.
        let gathered = control.allgather(state.encode_local_meta()).expect("meta allgather");
        for (rank, buf) in gathered.iter().enumerate() {
            if rank != ctx.rank {
                state.merge_meta(buf).expect("peer metadata parses");
            }
        }
        let daemon_state = Arc::clone(&state);
        std::thread::scope(|scope| {
            let daemon = scope.spawn(move || serve(daemon_state, service));
            let client = FsClient::new(Arc::clone(&state), service_remote.clone()).with_failover(
                FailoverConfig {
                    rpc_timeout: Duration::from_millis(500),
                    replica_rounds: 1, // replicas_of(0) = [0, 1]
                    attempts_per_replica: 1,
                    backoff_base: Duration::from_micros(100),
                    backoff_max: Duration::from_millis(1),
                    seed,
                    ..Default::default()
                },
            );
            let out = (ctx.rank == 2).then(|| reader_outcome(&client, &data, victim));
            control.barrier().expect("quiesce barrier");
            let _ = service_remote.rpc(ctx.rank, tags::SHUTDOWN, Vec::new());
            daemon.join().expect("daemon thread");
            out
        })
    });
    results.into_iter().nth(2).flatten().expect("rank 2 outcome")
}

#[test]
fn corruption_fails_only_covering_ranges_and_recovers_via_replica() {
    let o = chaos_run(0x5EED_C4A0);
    // Every window over an intact chunk was served by the corrupted
    // owner without any recovery action: the damage is confined.
    assert_eq!(o.clean_ok, NCHUNKS - 1, "all non-covering windows read: {o:?}");
    assert_eq!(o.crc_after_clean, 0, "non-covering reads must not trip CRCs: {o:?}");
    assert_eq!(o.degraded_after_clean, 0, "non-covering reads must not degrade: {o:?}");
    // Covering reads all delivered exact bytes, via the replica ring.
    assert_eq!(o.covered_ok, 4, "{o:?}");
    assert!(o.crc_failures > 0, "the corrupted chunk must trip its at-rest CRC: {o:?}");
    assert_eq!(
        o.crc_failures, o.degraded_reads,
        "every CRC rejection recovers in exactly one ring hop: {o:?}"
    );
    assert_eq!(o.rpc_timeouts, 0, "no link faults in this plan: {o:?}");
}

#[test]
fn three_same_seed_runs_have_identical_degraded_counters() {
    let a = chaos_run(0xC0FFEE);
    let b = chaos_run(0xC0FFEE);
    let c = chaos_run(0xC0FFEE);
    assert_eq!(a, b, "same seed, same corruption site, same recoveries");
    assert_eq!(b, c, "same seed, same corruption site, same recoveries");
    assert!(a.crc_failures > 0, "the schedule must bite: {a:?}");

    // A different seed moves the victim chunk; the structure (and hence
    // the counter totals) stays the same, the byte traffic shifts.
    let d = chaos_run(0xD15EA5E);
    assert_eq!(d.crc_failures, a.crc_failures, "same read plan, different victim: {d:?}");
}
