//! End-to-end integration: synthetic dataset -> data preparation ->
//! multi-node FanStore cluster -> training-style epochs, verifying bytes
//! and the paper's structural claims along the way.

use fanstore_repro::compress::registry::parse_name;
use fanstore_repro::datagen::{DatasetKind, DatasetSpec};
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, prepare_broadcast, PrepConfig};
use fanstore_repro::train::epoch::{run_epochs, EpochConfig};

type Files = Vec<(String, Vec<u8>)>;

fn packed_dataset(kind: DatasetKind, n: usize, partitions: usize) -> (Files, Vec<Vec<u8>>) {
    let spec = DatasetSpec::scaled(kind, n, 0x17E57);
    let files = spec.generate_all();
    let packed = prepare(
        files.clone(),
        &PrepConfig {
            partitions,
            codec: parse_name("lzsse8-2").unwrap(),
            store_if_incompressible: true,
            ..Default::default()
        },
    );
    (files, packed.partitions)
}

#[test]
fn every_byte_survives_the_full_path() {
    // Tokamak files are small enough to verify every byte cheaply.
    let (files, partitions) = packed_dataset(DatasetKind::TokamakNpz, 32, 3);
    let results =
        FanStore::run(ClusterConfig { nodes: 3, ..Default::default() }, partitions, |fs| {
            let mut mismatches = 0usize;
            for (path, expect) in &files {
                let got = fs.read_whole(path).unwrap();
                if &got != expect {
                    mismatches += 1;
                }
            }
            mismatches
        });
    assert_eq!(results, vec![0, 0, 0]);
}

#[test]
fn epochs_across_nodes_with_checkpoints() {
    let (files, partitions) = packed_dataset(DatasetKind::LanguageTxt, 12, 2);
    let total: u64 = files.iter().map(|(_, d)| d.len() as u64).sum();
    let cfg = EpochConfig {
        root: "language".into(),
        batch_per_node: 4,
        epochs: 2,
        checkpoint_every: 2,
        checkpoint_bytes: 1024,
        seed: 99,
        prefetch: None,
    };
    let reports =
        FanStore::run(ClusterConfig { nodes: 2, ..Default::default() }, partitions, |fs| {
            run_epochs(fs, &cfg).unwrap()
        });
    for r in &reports {
        assert_eq!(r.files_seen, 12);
        assert_eq!(r.iterations, 2 * 12usize.div_ceil(4));
        assert_eq!(r.bytes_read, total * 2);
        assert_eq!(r.checkpoints, 1);
    }
}

#[test]
fn incompressible_dataset_round_trips_via_store_fallback() {
    let (files, partitions) = packed_dataset(DatasetKind::ImageNetJpg, 8, 2);
    let results =
        FanStore::run(ClusterConfig { nodes: 2, ..Default::default() }, partitions, |fs| {
            files.iter().all(|(p, d)| &fs.read_whole(p).unwrap() == d)
        });
    assert_eq!(results, vec![true, true]);
}

#[test]
fn broadcast_validation_set_is_local_on_every_node() {
    let (_, partitions) = packed_dataset(DatasetKind::EmTif, 4, 4);
    let val_spec = DatasetSpec::scaled(DatasetKind::EmTif, 2, 0x7A1);
    let val_files: Vec<(String, Vec<u8>)> =
        (0..2).map(|i| (format!("val/v{i}.tif"), val_spec.generate(i))).collect();
    let broadcast = prepare_broadcast(val_files.clone(), &PrepConfig::default());

    let remote_opens = FanStore::run(
        ClusterConfig { nodes: 4, broadcast: Some(broadcast), ..Default::default() },
        partitions,
        |fs| {
            for (p, d) in &val_files {
                assert_eq!(&fs.read_whole(p).unwrap(), d);
            }
            fs.state().stats.remote_opens.get()
        },
    );
    assert_eq!(remote_opens, vec![0, 0, 0, 0], "validation reads never cross the fabric");
}

#[test]
fn replication_trades_memory_for_locality() {
    let (files, partitions) = packed_dataset(DatasetKind::TokamakNpz, 24, 4);
    // replication = 2: each node holds its own partition plus its left
    // neighbour's.
    let remote = FanStore::run(
        ClusterConfig { nodes: 4, replication: 2, ..Default::default() },
        partitions,
        |fs| {
            for (p, _) in &files {
                fs.read_whole(p).unwrap();
            }
            fs.state().stats.remote_opens.get()
        },
    );
    // Half the dataset is now local on every node: remote opens must be
    // exactly files * (1 - 2/4).
    for r in remote {
        assert_eq!(r, 12, "2 of 4 partitions local -> half the opens remote");
    }
}

#[test]
fn metadata_enumeration_is_complete_and_identical_on_all_nodes() {
    let (files, partitions) = packed_dataset(DatasetKind::ImageNetJpg, 30, 5);
    let listings =
        FanStore::run(ClusterConfig { nodes: 5, ..Default::default() }, partitions, |fs| {
            fs.enumerate("imagenet").unwrap()
        });
    let expect: Vec<String> = {
        let mut v: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
        v.sort();
        v
    };
    for listing in listings {
        assert_eq!(listing, expect);
    }
}
