//! Noisy-neighbor QoS test: tenant B floods the cluster with batched
//! reads while tenant A runs a steady read loop over disjoint paths.
//!
//! Two contracts are enforced:
//!
//! 1. **Determinism** — with a rate-0/burst-K bucket B is admitted
//!    exactly K batches per rank, and with a zero op-deadline every
//!    admitted remote batch is shed at the daemon (the deadline is
//!    already in the past when the message arrives). Every admission,
//!    throttle and shed decision is therefore a pure function of the
//!    request sequence, so three identical runs must produce *identical*
//!    per-rank counter outcomes — and every delivered byte (A's reads,
//!    and B's shed batches recovered through read-through) must be
//!    exact.
//!
//! 2. **Isolation** (release builds only) — with deficit round-robin
//!    weighting A 8:1 over B, A's p99 read latency under a sustained
//!    B flood must stay within 3x its solo baseline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fanstore_repro::store::cache::CacheConfig;
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::store::qos::{QosPolicy, TenantQuota};
use fanstore_repro::store::FsError;

const NODES: usize = 4;
const A_FILES: usize = 16;
const B_FILES: usize = 32;
const TENANT_A: u32 = 1;
const TENANT_B: u32 = 2;
const B_BURST: u32 = 3;
const B_CHUNK: usize = 4;

fn dataset() -> Vec<(String, Vec<u8>)> {
    let mut files = Vec::new();
    for i in 0..A_FILES {
        files.push((
            format!("a/shard{}/sample{i:03}.bin", i % 4),
            format!("tenant-a payload {i} ").repeat(40).into_bytes(),
        ));
    }
    for i in 0..B_FILES {
        files.push((
            format!("b/shard{}/bulk{i:03}.bin", i % 4),
            format!("tenant-b payload {i} ").repeat(120).into_bytes(),
        ));
    }
    files
}

fn expected() -> HashMap<String, Vec<u8>> {
    dataset().into_iter().collect()
}

/// Per-rank outcome of one contended run. Every field is a pure function
/// of the request sequence — nothing here depends on thread scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
struct QosOutcome {
    /// A's successful reads (all of them, twice over).
    a_ok: usize,
    /// A admissions: no bucket, so exactly one per read.
    a_admitted: u64,
    /// B admissions: rate 0 + burst K admits exactly K batches.
    b_admitted: u64,
    /// B batches refused at the client token bucket.
    b_throttled: u64,
    /// B entries delivered despite the daemon shedding the batch
    /// (read-through recovery).
    b_ok: usize,
    /// B entries refused wholesale with `Throttled`.
    b_throttled_entries: usize,
    /// SHED replies decoded by this rank's client.
    shed_replies: u64,
    /// Requests this rank's daemon shed on arrival (expired deadline).
    daemon_shed: u64,
    /// Failover budgets exhausted (must stay zero: nothing faults here).
    retry_exhausted: u64,
}

fn qos_policy(seed: u64) -> QosPolicy {
    let mut policy = QosPolicy::new()
        .with_quota(
            TENANT_A,
            TenantQuota { rate_per_s: 0.0, burst: 0, weight: 8, op_deadline: None },
        )
        .with_quota(
            TENANT_B,
            TenantQuota {
                rate_per_s: 0.0,
                burst: B_BURST,
                // B's deadline is already expired when the daemon sees it,
                // so every admitted remote batch sheds deterministically.
                op_deadline: Some(Duration::ZERO),
                weight: 1,
            },
        );
    policy.deadline_from_timeout = false;
    policy.throttle_retries = 0;
    policy.seed = seed;
    policy
}

fn contended_run(seed: u64) -> Vec<QosOutcome> {
    let packed = prepare(dataset(), &PrepConfig { partitions: NODES, ..Default::default() });
    let cfg = ClusterConfig {
        nodes: NODES,
        read_through: true, // B's shed batches recover from the FS copy
        qos: Some(qos_policy(seed)),
        ..Default::default()
    };
    let want = expected();
    FanStore::run(cfg, packed.partitions, |fs| {
        let a = fs.fork_tenant(TENANT_A);
        let b = fs.fork_tenant(TENANT_B);
        let a_paths = fs.enumerate("a").expect("enumerate a");
        let b_paths = fs.enumerate("b").expect("enumerate b");

        // Tenant B floods first, against cold caches: B_FILES/B_CHUNK
        // batches against a burst of B_BURST tokens.
        let mut b_ok = 0;
        let mut b_throttled_entries = 0;
        for chunk in b_paths.chunks(B_CHUNK) {
            for (path, result) in chunk.iter().zip(b.read_many(chunk)) {
                match result {
                    Ok(bytes) => {
                        assert_eq!(&bytes, &want[path], "tenant B bytes diverged: {path}");
                        b_ok += 1;
                    }
                    Err(FsError::Throttled(_)) => b_throttled_entries += 1,
                    Err(e) => panic!("tenant B unexpected error on {path}: {e}"),
                }
            }
        }

        // Tenant A's steady loop: every byte exact, no shed, no throttle.
        let mut a_ok = 0;
        for _pass in 0..2 {
            for path in &a_paths {
                let bytes = a.read_whole(path).expect("tenant A read");
                assert_eq!(&bytes, &want[path], "tenant A bytes diverged: {path}");
                a_ok += 1;
            }
        }

        (a_ok, b_ok, b_throttled_entries, Arc::clone(&fs.state().metrics))
    })
    .into_iter()
    .map(|(a_ok, b_ok, b_throttled_entries, metrics)| {
        // Snapshot only after FanStore::run has joined every daemon:
        // a rank's daemon-side counters (daemon.shed.requests) keep
        // moving until the *other* ranks' closures finish, so reading
        // them inside the closure would race the flood.
        let snap = metrics.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        QosOutcome {
            a_ok,
            a_admitted: counter(&format!("qos.tenant.{TENANT_A}.admitted")),
            b_admitted: counter(&format!("qos.tenant.{TENANT_B}.admitted")),
            b_throttled: counter(&format!("qos.tenant.{TENANT_B}.throttled")),
            b_ok,
            b_throttled_entries,
            shed_replies: counter("client.shed.replies"),
            daemon_shed: counter("daemon.shed.requests"),
            retry_exhausted: counter("client.retry.exhausted"),
        }
    })
    .collect()
}

#[test]
fn noisy_neighbor_is_deterministic_and_byte_exact() {
    let seed = 0x0_9005_CAFE;
    let first = contended_run(seed);

    // Shape: every rank admitted exactly B_BURST batches, throttled the
    // rest, and A was never refused anything.
    let batches = B_FILES.div_ceil(B_CHUNK) as u64;
    for (rank, out) in first.iter().enumerate() {
        assert_eq!(out.a_ok, A_FILES * 2, "rank {rank}: {out:?}");
        assert_eq!(out.a_admitted, (A_FILES * 2) as u64, "rank {rank}: {out:?}");
        assert_eq!(out.b_admitted, u64::from(B_BURST), "rank {rank}: {out:?}");
        assert_eq!(out.b_throttled, batches - u64::from(B_BURST), "rank {rank}: {out:?}");
        assert_eq!(out.b_ok, (B_BURST as usize) * B_CHUNK, "rank {rank}: {out:?}");
        assert_eq!(
            out.b_ok + out.b_throttled_entries,
            B_FILES,
            "rank {rank}: every B entry resolves: {out:?}"
        );
        assert_eq!(out.retry_exhausted, 0, "rank {rank}: {out:?}");
    }
    // The flood actually hit the daemons: at least one admitted batch per
    // cluster carried remote paths, was shed on arrival, and recovered.
    let shed: u64 = first.iter().map(|o| o.daemon_shed).sum();
    let shed_seen: u64 = first.iter().map(|o| o.shed_replies).sum();
    assert!(shed > 0, "expired deadlines must shed at the daemons: {first:?}");
    assert!(shed_seen > 0, "clients must observe the SHED replies: {first:?}");

    // Same seed, same schedule-independent outcome — three times over.
    for run in 0..2 {
        let again = contended_run(seed);
        assert_eq!(first, again, "run {} diverged from run 0", run + 2);
    }
}

/// Release-only latency gate: A's p99 under a sustained B flood stays
/// within 3x its solo baseline (with a floor to absorb scheduler noise on
/// microsecond-scale reads). Rank 0 measures; ranks 1..N flood until rank
/// 0 finishes. `release_on_zero` evicts each decompressed entry as soon
/// as its reader is done, so every measured read exercises the full
/// daemon path instead of the warm cache.
#[test]
fn flooded_p99_stays_within_three_times_solo() {
    if cfg!(debug_assertions) {
        return; // latency assertions are only meaningful optimised
    }
    let floor_us = 500;
    let solo = measured_run(false);
    let flooded = measured_run(true);
    let budget = 3 * solo.max(floor_us);
    eprintln!("qos p99 gate: solo {solo}us, flooded {flooded}us, budget {budget}us");
    assert!(
        flooded <= budget,
        "tenant A p99 under flood {flooded}us exceeds 3x solo baseline \
         ({solo}us, floor {floor_us}us)"
    );
}

/// Run the cluster and return tenant A's p99 read latency (us) on rank 0.
fn measured_run(flood: bool) -> u64 {
    let packed = prepare(dataset(), &PrepConfig { partitions: NODES, ..Default::default() });
    let mut policy = QosPolicy::new()
        .with_quota(
            TENANT_A,
            TenantQuota { rate_per_s: 0.0, burst: 0, weight: 8, op_deadline: None },
        )
        .with_quota(
            TENANT_B,
            // Unlimited admission, no deadline: the flood is only tamed by
            // the daemon's weighted round-robin.
            TenantQuota { rate_per_s: 0.0, burst: 0, weight: 1, op_deadline: None },
        );
    policy.deadline_from_timeout = false;
    let cfg = ClusterConfig {
        nodes: NODES,
        cache: CacheConfig { capacity: 64 * 1024, release_on_zero: true, ..Default::default() },
        qos: Some(policy),
        ..Default::default()
    };
    let done = Arc::new(AtomicBool::new(false));
    let quantiles = FanStore::run(cfg, packed.partitions, |fs| {
        if fs.state().rank == 0 {
            let a = fs.fork_tenant(TENANT_A);
            let paths = fs.enumerate("a").expect("enumerate a");
            let mut lat = Vec::new();
            for _pass in 0..12 {
                for path in &paths {
                    let start = Instant::now();
                    a.read_whole(path).expect("tenant A read");
                    lat.push(start.elapsed().as_micros() as u64);
                }
            }
            done.store(true, Ordering::Release);
            lat.sort_unstable();
            Some(lat[lat.len() * 99 / 100])
        } else {
            if flood {
                let b = fs.fork_tenant(TENANT_B);
                let paths = fs.enumerate("b").expect("enumerate b");
                while !done.load(Ordering::Acquire) {
                    for chunk in paths.chunks(8) {
                        for r in b.read_many(chunk) {
                            r.expect("tenant B read");
                        }
                    }
                }
            }
            None
        }
    });
    quantiles[0].expect("rank 0 measured")
}
