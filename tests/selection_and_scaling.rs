//! Integration: measured codec properties feed the selection algorithm
//! and the training pipeline, reproducing the paper's §VII-E decisions
//! end to end (real codecs + real synthetic data + the Eq. 1-3 selector).

use fanstore_repro::compress::registry::parse_name;
use fanstore_repro::compress::{compress_to_vec, decompress_to_vec};
use fanstore_repro::datagen::{DatasetKind, DatasetSpec};
use fanstore_repro::select::{select, Candidate, IoProfile};
use fanstore_repro::train::apps::AppSpec;
use fanstore_repro::train::pipeline::{relative_performance, FetchModel};

fn measure(name: &str, kind: DatasetKind, n: usize) -> Candidate {
    let codec = fanstore_repro::compress::registry::create(parse_name(name).unwrap()).unwrap();
    let spec = DatasetSpec::scaled(kind, n, 0x5E1E);
    let samples: Vec<Vec<u8>> = (0..n).map(|i| spec.generate(i)).collect();
    let compressed: Vec<Vec<u8>> =
        samples.iter().map(|s| compress_to_vec(codec.as_ref(), s)).collect();
    let t0 = std::time::Instant::now();
    for (c, s) in compressed.iter().zip(&samples) {
        std::hint::black_box(decompress_to_vec(codec.as_ref(), c, s.len()).unwrap());
    }
    let input: usize = samples.iter().map(Vec::len).sum();
    let output: usize = compressed.iter().map(Vec::len).sum();
    Candidate {
        name: name.into(),
        decomp_s_per_file: t0.elapsed().as_secs_f64() / n as f64,
        ratio: input as f64 / output as f64,
    }
}

#[test]
fn measured_candidates_have_paper_ordering() {
    // On EM data: lzma must beat lz4hc on ratio and lose badly on
    // decompression speed — the tradeoff the whole paper turns on.
    let lz = measure("lz4hc-9", DatasetKind::EmTif, 2);
    let lzma = measure("lzma-6", DatasetKind::EmTif, 2);
    assert!(lzma.ratio > lz.ratio, "lzma {} vs lz4hc {}", lzma.ratio, lz.ratio);
    assert!(
        lzma.decomp_s_per_file > 3.0 * lz.decomp_s_per_file,
        "lzma decode {}s vs lz4hc {}s",
        lzma.decomp_s_per_file,
        lz.decomp_s_per_file
    );
}

#[test]
fn frnn_async_selection_accepts_fast_codecs_end_to_end() {
    let app = AppSpec::frnn_cpu();
    let candidates = vec![
        measure("lzf-2", DatasetKind::TokamakNpz, 16),
        measure("lzsse8-2", DatasetKind::TokamakNpz, 16),
        measure("lz4hc-9", DatasetKind::TokamakNpz, 16),
    ];
    let io = IoProfile::uniform(29_103.0, 30.0);
    let sel = select(&app.profile(), &io, &candidates);
    // 1.2 KB files decompress in microseconds; the 655 ms async budget
    // swallows all of them.
    assert!(
        sel.evaluations.iter().all(|e| e.feasible),
        "all fast codecs feasible under async: {:?}",
        sel.evaluations.iter().map(|e| (&e.candidate.name, e.feasible)).collect::<Vec<_>>()
    );
}

#[test]
fn selection_verdicts_are_consistent_with_pipeline_model() {
    // Whatever the selector declares feasible must, in the pipeline
    // composition, lose less than ~0.1% against baseline; whatever it
    // rejects by a wide margin must lose noticeably.
    let app = AppSpec::srgan_gtx();
    let io = IoProfile {
        tpt_read: 9_469.0,
        bdw_read: 4_969.0,
        tpt_read_raw: 3_158.0,
        bdw_read_raw: 6_663.0,
    };
    let candidates =
        vec![measure("lzsse8-2", DatasetKind::EmTif, 2), measure("lzma-6", DatasetKind::EmTif, 2)];
    let sel = select(&app.profile(), &io, &candidates);
    let baseline =
        FetchModel { tpt_read: 3_158.0, bdw_read: 6_663.0, ratio: 1.0, decomp_s_per_file: 0.0 };
    for e in &sel.evaluations {
        let fetch = FetchModel {
            tpt_read: 9_469.0,
            bdw_read: 4_969.0,
            ratio: e.candidate.ratio,
            decomp_s_per_file: e.candidate.decomp_s_per_file,
        };
        let rel = relative_performance(&app, &baseline, &fetch);
        if e.feasible {
            assert!(rel > 0.995, "{} feasible but rel {}", e.candidate.name, rel);
        }
        if e.fetch_time > 2.0 * e.budget {
            assert!(rel < 0.99, "{} badly infeasible but rel {}", e.candidate.name, rel);
        }
    }
}

#[test]
fn storage_capacity_scales_with_selected_ratio() {
    // The headline claim: the same hardware hosts ratio-x more data. Pack
    // a dataset and check the capacity math end to end.
    let spec = DatasetSpec::scaled(DatasetKind::LungNii, 6, 0xCAFE);
    let files = spec.generate_all();
    let packed = fanstore_repro::store::prep::prepare(
        files,
        &fanstore_repro::store::prep::PrepConfig {
            partitions: 2,
            codec: parse_name("lzma-6").unwrap(),
            store_if_incompressible: true,
            ..Default::default()
        },
    );
    let ratio = packed.ratio();
    assert!(ratio > 4.0, "lung data should pack > 4x, got {ratio:.2}");
    // A 60 GB node-buffer hosts `ratio` times more of this dataset.
    let node_buffer = 60e9;
    let hosted_raw = node_buffer;
    let hosted_packed = node_buffer * ratio;
    assert!(hosted_packed / hosted_raw >= 4.0);
}
