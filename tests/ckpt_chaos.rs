//! Chaos test: a rank dies *mid-checkpoint* and the survivor recovers —
//! never from a torn generation.
//!
//! A seeded `FaultPlan` cuts rank 0's service links after a fixed number
//! of tagged PUT (replication) sends, so the kill lands between a
//! generation's segment push and its manifest push. The manifest is the
//! atomic publish point: without it the half-replicated generation is
//! *invisible* on the survivor, which must recover the previous
//! generation byte-identically (CRC-verified the whole way down).

use std::time::Duration;

use fanstore_repro::mpi::FaultPlan;
use fanstore_repro::store::ckpt::{CheckpointStore, CkptConfig, Recovery};
use fanstore_repro::store::client::FailoverConfig;
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::daemon::tags;
use fanstore_repro::store::prep::{prepare, PrepConfig};

const NODES: usize = 2;

fn partitions() -> Vec<Vec<u8>> {
    let files = (0..4)
        .map(|i| (format!("d/f{i}.bin"), format!("input {i} ").repeat(50).into_bytes()))
        .collect();
    prepare(files, &PrepConfig { partitions: NODES, ..Default::default() }).partitions
}

fn ckpt_cfg() -> CkptConfig {
    CkptConfig {
        tag: "chaos".to_string(),
        chunk_size: 1024,
        chunks_per_segment: 8,
        full_every: 0,
        replicas: 1,
        keep_last: 0,
        ..CkptConfig::default()
    }
}

/// Evolving model state, byte-checkable per generation.
fn model(generation: u64) -> Vec<u8> {
    (0..4096usize)
        .map(|i| {
            let stable = (i * 131) as u8;
            if i.is_multiple_of(61) {
                stable.wrapping_add(generation as u8)
            } else {
                stable
            }
        })
        .collect()
}

fn chaos_cluster(put_sends_before_kill: u64) -> ClusterConfig {
    ClusterConfig {
        nodes: NODES,
        fault_plan: Some(FaultPlan::new(0xC4A0_0FF1).kill_after_tag(
            0,
            tags::PUT,
            put_sends_before_kill,
        )),
        failover: Some(FailoverConfig {
            rpc_timeout: Duration::from_millis(300),
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// Wait until the survivor's replica of `store`'s lineage shows at least
/// one published generation (replication is asynchronous w.r.t. this
/// rank's closure).
fn await_lineage(store: &CheckpointStore) {
    for _ in 0..4000 {
        if !store.generations().expect("local scan").is_empty() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("replicated lineage never appeared");
}

/// The headline chaos scenario: with a 4 KiB model split into 4 chunks
/// (one segment per generation), each checkpoint costs exactly 2 PUT
/// sends — segment, then manifest. Killing rank 0 after 3 PUT sends lets
/// generation 1 replicate fully and tears generation 2 exactly between
/// its segment push and its manifest push.
#[test]
fn mid_checkpoint_kill_never_exposes_a_torn_generation() {
    let results = FanStore::run(chaos_cluster(3), partitions(), |fs| {
        if fs.rank() == 0 {
            let store = CheckpointStore::new(fs, ckpt_cfg());
            let r1 = store.put(1, &model(1)).expect("gen 1");
            assert_eq!(r1.replicate_failures, 0, "kill has not fired yet");
            let r2 = store.put(2, &model(2)).expect("gen 2 still publishes locally");
            assert_eq!(
                r2.replicate_failures, 1,
                "the manifest push dies mid-checkpoint (segment already landed)"
            );
            // The victim's own copy of gen 2 is whole: local recovery
            // (e.g. the same node restarting) sees it.
            match CheckpointStore::new(fs, ckpt_cfg()).recover().expect("local recover") {
                Recovery::Loaded { generation, payload, .. } => {
                    assert_eq!(generation, 2);
                    assert_eq!(payload, model(2));
                }
                Recovery::Fresh => panic!("rank 0 wrote two generations"),
            }
            return 0u64;
        }
        // Rank 1, the survivor, recovers rank 0's lineage from its local
        // replica copies alone (rank 0 is unreachable).
        let store = CheckpointStore::for_rank(fs, ckpt_cfg(), 0);
        await_lineage(&store);
        match store.recover().expect("replica recover") {
            Recovery::Loaded { generation, payload, skipped } => {
                assert_eq!(
                    generation, 1,
                    "gen 2's manifest never arrived, so the half-replicated \
                     generation must be invisible — not loaded torn"
                );
                assert_eq!(payload, model(1), "byte-identical CRC-verified restore");
                assert!(skipped.is_empty(), "an unpublished generation is not even scanned");
                generation
            }
            Recovery::Fresh => panic!("gen 1 was fully replicated before the kill"),
        }
    });
    assert_eq!(results, vec![0, 1]);
}

/// Killing the very first PUT send leaves the survivor with *nothing* —
/// recovery must report a clean fresh start, not a partial generation.
#[test]
fn kill_before_any_replication_leaves_survivor_fresh() {
    let results = FanStore::run(chaos_cluster(0), partitions(), |fs| {
        if fs.rank() == 0 {
            let store = CheckpointStore::new(fs, ckpt_cfg());
            let r = store.put(1, &model(1)).expect("local publish still works");
            assert_eq!(r.replicate_failures, 2, "segment and manifest pushes both die");
            return true;
        }
        // Give replication a moment, then confirm nothing ever arrives:
        // a dropped segment without its manifest publishes nothing.
        std::thread::sleep(Duration::from_millis(50));
        let store = CheckpointStore::for_rank(fs, ckpt_cfg(), 0);
        matches!(store.recover().expect("scan"), Recovery::Fresh)
    });
    assert_eq!(results, vec![true, true]);
}

/// The same seed must produce the same outcome: fault decisions are a
/// pure function of the plan, so the chaos scenario is replayable.
#[test]
fn chaos_outcome_is_deterministic() {
    let run = || {
        FanStore::run(chaos_cluster(3), partitions(), |fs| {
            if fs.rank() == 0 {
                let store = CheckpointStore::new(fs, ckpt_cfg());
                let mut failures = 0;
                for g in 1..=3u64 {
                    failures += store.put(g, &model(g)).expect("put").replicate_failures;
                }
                return failures;
            }
            let store = CheckpointStore::for_rank(fs, ckpt_cfg(), 0);
            await_lineage(&store);
            match store.recover().expect("recover") {
                Recovery::Loaded { generation, .. } => generation as usize,
                Recovery::Fresh => usize::MAX,
            }
        })
    };
    let a = run();
    assert_eq!(a, run(), "seeded fault plan must replay identically");
    assert_eq!(a[1], 1, "survivor always lands on the last fully replicated generation");
}
