//! Integration tests for the POSIX-style interface semantics (paper
//! §IV-A): the ten-call surface, multi-read/single-write, and the
//! directory operations, across a real multi-node cluster.

use fanstore_repro::store::client::Whence;
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::store::FsError;

fn cluster_with(files: Vec<(String, Vec<u8>)>, nodes: usize) -> Vec<Vec<u8>> {
    prepare(files, &PrepConfig { partitions: nodes, ..Default::default() }).partitions
}

#[test]
fn read_lseek_semantics() {
    let content: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
    let parts = cluster_with(vec![("d/f.bin".into(), content.clone())], 1);
    FanStore::run(ClusterConfig::default(), parts, |fs| {
        let fd = fs.open("d/f.bin").unwrap();

        // Sequential reads advance the offset.
        let mut buf = [0u8; 100];
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 100);
        assert_eq!(&buf[..], &content[..100]);
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 100);
        assert_eq!(&buf[..], &content[100..200]);

        // SEEK_SET / SEEK_CUR / SEEK_END.
        assert_eq!(fs.lseek(fd, 0, Whence::Set).unwrap(), 0);
        assert_eq!(fs.lseek(fd, 50, Whence::Cur).unwrap(), 50);
        assert_eq!(fs.lseek(fd, -8, Whence::End).unwrap(), 9992);
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 8, "short read at EOF");
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 0, "EOF reads return 0");

        // Seeking past EOF is legal; the next read returns 0.
        assert_eq!(fs.lseek(fd, 100, Whence::End).unwrap(), 10_100);
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 0);

        // Negative absolute positions are rejected.
        assert!(fs.lseek(fd, -1, Whence::Set).is_err());

        fs.close(fd).unwrap();
        // Operations on a closed fd fail.
        assert!(matches!(fs.read(fd, &mut buf), Err(FsError::BadFd(_))));
        assert!(matches!(fs.close(fd), Err(FsError::BadFd(_))));
    });
}

#[test]
fn concurrent_readers_on_one_file() {
    let content = b"shared content".repeat(500);
    let parts = cluster_with(vec![("f".into(), content.clone())], 1);
    FanStore::run(ClusterConfig::default(), parts, |fs| {
        // The multi-read model: many descriptors on the same file, each
        // with an independent offset.
        let fds: Vec<i32> = (0..8).map(|_| fs.open("f").unwrap()).collect();
        let mut buf = [0u8; 64];
        for (i, &fd) in fds.iter().enumerate() {
            fs.lseek(fd, (i * 10) as i64, Whence::Set).unwrap();
            let n = fs.read(fd, &mut buf).unwrap();
            assert_eq!(&buf[..n], &content[i * 10..i * 10 + n]);
        }
        for fd in fds {
            fs.close(fd).unwrap();
        }
    });
}

#[test]
fn single_write_model_enforced() {
    let parts = cluster_with(vec![("in.bin".into(), vec![1u8; 100])], 1);
    FanStore::run(ClusterConfig::default(), parts, |fs| {
        // Write an output file once.
        let fd = fs.create("out/log.txt").unwrap();
        fs.write(fd, b"epoch 1 loss 0.5\n").unwrap();
        fs.write(fd, b"epoch 2 loss 0.4\n").unwrap();
        // Reading a write fd violates the model.
        let mut buf = [0u8; 4];
        assert!(matches!(fs.read(fd, &mut buf), Err(FsError::ReadOnly(_))));
        fs.close(fd).unwrap();

        // Once closed, the file is immutable: no re-create, no overwrite.
        assert!(matches!(fs.create("out/log.txt"), Err(FsError::AlreadyExists(_))));
        // Input files cannot be opened for writing either.
        assert!(matches!(fs.create("in.bin"), Err(FsError::AlreadyExists(_))));
        // Writing to a read fd fails.
        let rfd = fs.open("in.bin").unwrap();
        assert!(matches!(fs.write(rfd, b"x"), Err(FsError::ReadOnly(_))));
        fs.close(rfd).unwrap();

        // The written file is readable again locally with exact content.
        let back = fs.read_whole("out/log.txt").unwrap();
        assert_eq!(back, b"epoch 1 loss 0.5\nepoch 2 loss 0.4\n");
        // And visible through stat with the right size.
        assert_eq!(fs.stat("out/log.txt").unwrap().size, 34);
    });
}

#[test]
fn directory_operations() {
    let files = vec![
        ("data/a/x.bin".to_string(), vec![0u8; 64]),
        ("data/a/y.bin".to_string(), vec![0u8; 64]),
        ("data/b/z.bin".to_string(), vec![0u8; 64]),
    ];
    let parts = cluster_with(files, 2);
    FanStore::run(ClusterConfig { nodes: 2, ..Default::default() }, parts, |fs| {
        // stat on directories reports S_IFDIR.
        assert!(fs.stat("data").unwrap().is_dir());
        assert!(fs.stat("data/a").unwrap().is_dir());
        assert!(!fs.stat("data/a/x.bin").unwrap().is_dir());

        // opendir/readdir/closedir stream entries in sorted order.
        let mut stream = fs.opendir("data").unwrap();
        let mut names = Vec::new();
        while let Some(e) = stream.next_entry() {
            names.push(e.to_string());
        }
        fs.closedir(stream);
        assert_eq!(names, vec!["a", "b"]);

        let mut sub = fs.opendir("data/a").unwrap();
        assert_eq!(sub.next_entry(), Some("x.bin"));
        assert_eq!(sub.next_entry(), Some("y.bin"));
        assert_eq!(sub.next_entry(), None);

        // Missing paths error like ENOENT.
        assert!(matches!(fs.opendir("nope"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.open("data/a/missing.bin"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.stat("data/missing"), Err(FsError::NotFound(_))));
    });
}

#[test]
fn remote_files_equal_local_files() {
    // With 2 nodes and 2 partitions, each node holds half; both views
    // must be byte-identical for every file.
    let files: Vec<(String, Vec<u8>)> = (0..10)
        .map(|i| (format!("t/f{i}.bin"), format!("file {i} ").repeat(100).into_bytes()))
        .collect();
    let parts = cluster_with(files.clone(), 2);
    let digests = FanStore::run(ClusterConfig { nodes: 2, ..Default::default() }, parts, |fs| {
        files
            .iter()
            .map(|(p, _)| {
                let d = fs.read_whole(p).unwrap();
                fanstore_repro::compress::crc32::crc32(&d)
            })
            .collect::<Vec<u32>>()
    });
    assert_eq!(digests[0], digests[1]);
    for ((_, data), crc) in files.iter().zip(&digests[0]) {
        assert_eq!(fanstore_repro::compress::crc32::crc32(data), *crc);
    }
}

#[test]
fn stat_matches_read_length_everywhere() {
    let files: Vec<(String, Vec<u8>)> =
        (0..6).map(|i| (format!("s/f{i}"), vec![7u8; 100 + i * 37])).collect();
    let parts = cluster_with(files.clone(), 3);
    FanStore::run(ClusterConfig { nodes: 3, ..Default::default() }, parts, |fs| {
        for (p, d) in &files {
            let st = fs.stat(p).unwrap();
            assert_eq!(st.size as usize, d.len(), "{p}");
            assert_eq!(fs.read_whole(p).unwrap().len(), d.len());
            // blocks/blksize populated like a real stat.
            assert_eq!(st.blksize, 4096);
            assert_eq!(st.blocks, (d.len() as u64).div_ceil(512));
        }
    });
}
