//! Deterministic stress for the batched read path: 8 client threads per
//! rank on a 4-rank cluster interleave `read_many`, fd-based reads and
//! write/unlink cycles over a shared seed-shuffled manifest while rank
//! 0's fabric links are dead from the first message.
//!
//! Determinism is the point, not a side effect: per-thread slices are
//! disjoint (so cache state per path belongs to exactly one thread) and
//! the only fault is a kill (probabilistic faults consume per-link
//! sequence numbers, which thread interleaving would perturb). Every
//! byte must match the dataset, the concurrent run must reproduce the
//! serial oracle's digests and degraded-op counters exactly, and three
//! same-seed runs must yield identical outcomes.

use std::time::Duration;

use fanstore_repro::compress::crc32::crc32;
use fanstore_repro::mpi::FaultPlan;
use fanstore_repro::store::client::{FailoverConfig, FsClient};
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::store::FsError;

const NODES: usize = 4;
const THREADS: usize = 8;
const SLICE: usize = 8;
const FILES: usize = THREADS * SLICE; // 64
const ROUNDS: usize = 2;

fn dataset() -> Vec<(String, Vec<u8>)> {
    (0..FILES)
        .map(|i| {
            (
                format!("stress/g{}/s{i:03}.bin", i % 4),
                format!("stress sample {i} ").repeat(30 + i % 7 * 25).into_bytes(),
            )
        })
        .collect()
}

/// Seeded Fisher–Yates over the manifest indices (xorshift64* driver).
fn shuffled_indices(seed: u64) -> Vec<usize> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut idx: Vec<usize> = (0..FILES).collect();
    for i in (1..FILES).rev() {
        idx.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    idx
}

/// Fold `(path, data)` into a running crc32 digest.
fn absorb(digest: &mut u32, path: &str, data: &[u8]) {
    let mut buf = Vec::with_capacity(4 + path.len() + data.len());
    buf.extend_from_slice(&digest.to_le_bytes());
    buf.extend_from_slice(path.as_bytes());
    buf.extend_from_slice(data);
    *digest = crc32(&buf);
}

/// One thread's fixed op script: alternate `read_many` and fd-based
/// reads over its slice of the shuffled manifest, then a
/// write/read-back/unlink cycle on its own output file. Round 2 replays
/// the slice against a warm cache. Returns a digest of every byte the
/// thread observed.
fn thread_script(fs: &FsClient, tid: usize, slice: &[usize], files: &[(String, Vec<u8>)]) -> u32 {
    let mut digest = 0u32;
    let paths: Vec<String> = slice.iter().map(|&i| files[i].0.clone()).collect();
    for round in 0..ROUNDS {
        for (c, (chunk, want)) in paths.chunks(3).zip(slice.chunks(3)).enumerate() {
            if (c + round) % 2 == 0 {
                for (j, result) in fs.read_many(chunk).into_iter().enumerate() {
                    let data = result.unwrap_or_else(|e| {
                        panic!("t{tid} r{round} read_many {}: {e:?}", chunk[j])
                    });
                    assert_eq!(data, files[want[j]].1, "t{tid} r{round} {}", chunk[j]);
                    absorb(&mut digest, &chunk[j], &data);
                }
            } else {
                for (path, &i) in chunk.iter().zip(want) {
                    let fd = fs.open(path).unwrap_or_else(|e| panic!("t{tid} open {path}: {e:?}"));
                    let mut data = Vec::new();
                    let mut buf = [0u8; 301];
                    loop {
                        let n = fs.read(fd, &mut buf).unwrap();
                        if n == 0 {
                            break;
                        }
                        data.extend_from_slice(&buf[..n]);
                    }
                    fs.close(fd).unwrap();
                    assert_eq!(data, files[i].1, "t{tid} r{round} {path}");
                    absorb(&mut digest, path, &data);
                }
            }
        }
        // Own-output leg: create, read back, unlink — and a second unlink
        // must report the file gone.
        let out = format!("out/r{}t{tid}/gen{round}.bin", fs.rank());
        let payload = format!("r{} t{tid} round {round} ", fs.rank()).repeat(40).into_bytes();
        fs.write_whole(&out, &payload).unwrap();
        let back = fs.read_whole(&out).unwrap();
        assert_eq!(back, payload, "t{tid} r{round} own output");
        absorb(&mut digest, &out, &back);
        fs.unlink(&out).unwrap();
        assert!(matches!(fs.unlink(&out), Err(FsError::NotFound(_))), "t{tid} double unlink");
    }
    digest
}

/// Per-rank outcome: per-thread content digests plus every degraded-op
/// counter the recovery machinery increments.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RankOutcome {
    digests: Vec<u32>,
    degraded: u64,
    read_through: u64,
    rpc_timeouts: u64,
    crc_failures: u64,
    files_written: u64,
    batches: u64,
    fallbacks: u64,
}

fn run_stress(seed: u64, parallel: bool) -> Vec<RankOutcome> {
    let files = dataset();
    let manifest = shuffled_indices(seed);
    let packed = prepare(files.clone(), &PrepConfig { partitions: 8, ..Default::default() });
    let cfg = ClusterConfig {
        nodes: NODES,
        replication: 2,
        read_through: true,
        // Rank 0's links are dead before the first message: survivors
        // fail over to ring replicas, rank 0 itself reads through.
        fault_plan: Some(FaultPlan::new(seed).kill(0, 0)),
        failover: Some(FailoverConfig {
            rpc_timeout: Duration::from_millis(500),
            attempts_per_replica: 1,
            backoff_base: Duration::from_micros(100),
            backoff_max: Duration::from_millis(1),
            seed,
            ..Default::default()
        }),
        ..Default::default()
    };
    FanStore::run(cfg, packed.partitions, |fs| {
        let digests: Vec<u32> = if parallel {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|tid| {
                        let slice = &manifest[tid * SLICE..(tid + 1) * SLICE];
                        let files = &files;
                        s.spawn(move || thread_script(fs, tid, slice, files))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("stress thread")).collect()
            })
        } else {
            // Serial oracle: the same scripts, one after another.
            (0..THREADS)
                .map(|tid| {
                    thread_script(fs, tid, &manifest[tid * SLICE..(tid + 1) * SLICE], &files)
                })
                .collect()
        };
        let stats = &fs.state().stats;
        let snap = fs.state().metrics.snapshot();
        let counter = |key: &str| snap.counters.get(key).copied().unwrap_or(0);
        RankOutcome {
            digests,
            degraded: stats.degraded_reads.get(),
            read_through: stats.read_through_reads.get(),
            rpc_timeouts: stats.rpc_timeouts.get(),
            crc_failures: stats.crc_failures.get(),
            files_written: stats.files_written.get(),
            batches: counter("client.get_many.batches"),
            fallbacks: counter("client.get_many.fallbacks"),
        }
    })
}

const SEED: u64 = 0x57E5_5EED;

#[test]
fn concurrent_stress_matches_serial_oracle() {
    let oracle = run_stress(SEED, false);
    let live = run_stress(SEED, true);
    assert_eq!(oracle, live, "8-thread interleaving must not change bytes or degraded-op counts");

    // The schedule actually stressed the degraded paths.
    for (rank, o) in live.iter().enumerate() {
        assert_eq!(o.crc_failures, 0, "rank {rank}: kill-only plan never corrupts");
        assert_eq!(o.files_written, (THREADS * ROUNDS) as u64, "rank {rank}");
        assert!(o.batches > 0, "rank {rank}: read_many exercised: {o:?}");
    }
    assert!(live[0].read_through > 0, "rank 0 is cut off; it must read through: {live:?}");
    let survivor_timeouts: u64 = live[1..].iter().map(|o| o.rpc_timeouts).sum();
    assert!(survivor_timeouts > 0, "survivors must notice rank 0 is dead: {live:?}");
    for (rank, o) in live.iter().enumerate().skip(1) {
        assert_eq!(o.read_through, 0, "rank {rank} reaches the ring replica instead: {o:?}");
    }
}

#[test]
fn three_seeded_runs_identical_outcomes() {
    let first = run_stress(SEED ^ 0xA5A5, true);
    let second = run_stress(SEED ^ 0xA5A5, true);
    let third = run_stress(SEED ^ 0xA5A5, true);
    assert_eq!(first, second, "run 2 diverged");
    assert_eq!(second, third, "run 3 diverged");
    let degraded: u64 = first.iter().map(|o| o.degraded).sum();
    assert!(degraded > 0, "the dead rank must force degraded reads: {first:?}");
}
