//! Chaos test: seeded fault injection against a live training run.
//!
//! A 4-node cluster with ring replication runs two epochs while the
//! fabric kills rank 0's service links mid-epoch and corrupts ~1% of
//! payloads. Every rank must still deliver every byte — survivors by
//! failing over to ring replicas, the victim by reading through to the
//! shared-file-system copy — and because every fault decision is a pure
//! function of the seed, the degraded-read counters must be *identical*
//! across two runs of the same plan.

use std::time::Duration;

use fanstore_repro::mpi::FaultPlan;
use fanstore_repro::store::client::FailoverConfig;
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::train::epoch::{run_epochs, EpochConfig};

const NODES: usize = 4;
const FILES: usize = 24;
const EPOCHS: usize = 2;

fn dataset() -> Vec<(String, Vec<u8>)> {
    (0..FILES)
        .map(|i| {
            (
                format!("train/shard{}/sample{i:03}.bin", i % 4),
                format!("sample {i} payload ").repeat(60).into_bytes(),
            )
        })
        .collect()
}

/// Per-rank outcome of one chaotic run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RankOutcome {
    bytes_read: u64,
    iterations: usize,
    degraded: u64,
    read_through: u64,
    rpc_timeouts: u64,
    crc_failures: u64,
}

fn chaotic_run(seed: u64) -> Vec<RankOutcome> {
    let files = dataset();
    let packed = prepare(files, &PrepConfig { partitions: 8, ..Default::default() });
    let cfg = ClusterConfig {
        nodes: NODES,
        replication: 2, // every partition has one ring replica
        read_through: true,
        fault_plan: Some(
            // Rank 0's service links go dark after 3 messages each;
            // ~1% of surviving payloads are corrupted in flight.
            FaultPlan::new(seed).kill(0, 3).corrupt_prob(0.01),
        ),
        failover: Some(FailoverConfig {
            rpc_timeout: Duration::from_millis(500),
            attempts_per_replica: 2,
            backoff_base: Duration::from_micros(200),
            backoff_max: Duration::from_millis(2),
            seed,
            ..Default::default()
        }),
        ..Default::default()
    };
    let epoch_cfg = EpochConfig {
        root: "train".into(),
        batch_per_node: 4,
        epochs: EPOCHS,
        checkpoint_every: 0,
        checkpoint_bytes: 0,
        seed,
        prefetch: None,
    };
    FanStore::run(cfg, packed.partitions, |fs| {
        let report = run_epochs(fs, &epoch_cfg).expect("training survives the faults");
        let stats = &fs.state().stats;
        RankOutcome {
            bytes_read: report.bytes_read,
            iterations: report.iterations,
            degraded: report.degraded,
            read_through: stats.read_through_reads.get(),
            rpc_timeouts: stats.rpc_timeouts.get(),
            crc_failures: stats.crc_failures.get(),
        }
    })
}

#[test]
fn training_survives_a_dead_rank_and_corruption() {
    let total_bytes: u64 = dataset().iter().map(|(_, d)| d.len() as u64).sum();
    let outcomes = chaotic_run(0xC4A0_5EED);

    for (rank, o) in outcomes.iter().enumerate() {
        // Every byte of every epoch arrived intact on every rank — the
        // CRC check rejects corrupted replies before they reach training.
        assert_eq!(
            o.bytes_read,
            total_bytes * EPOCHS as u64,
            "rank {rank}: every file read once per epoch"
        );
        assert_eq!(o.iterations, FILES / 4 * EPOCHS, "rank {rank}");
    }

    // The kill engaged: ranks that fetched from rank 0 after the cutoff
    // failed over, and the victim itself fell back to read-through.
    let degraded_total: u64 = outcomes.iter().map(|o| o.degraded).sum();
    assert!(degraded_total > 0, "the fault plan must bite: {outcomes:?}");
    assert!(
        outcomes[0].read_through > 0,
        "rank 0's outgoing links are dead; it must read through: {outcomes:?}"
    );
    let survivor_failovers: u64 = outcomes[1..].iter().map(|o| o.rpc_timeouts).sum();
    assert!(survivor_failovers > 0, "survivors must have seen rank 0 time out: {outcomes:?}");
    // Each read-through fallback marks exactly one degraded read, so the
    // degraded counter bounds it from above on every rank.
    for (rank, o) in outcomes.iter().enumerate() {
        assert!(
            o.degraded >= o.read_through,
            "rank {rank}: every read-through is a degraded read: {o:?}"
        );
    }
    // Survivors never need the shared file system: rank 0's partitions
    // are replicated on rank 1, whose links are healthy. (Guards the
    // owner mapping: partition indices must reduce to live ranks.)
    for (rank, o) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(o.read_through, 0, "rank {rank} can reach a replica: {o:?}");
    }
}

/// Per-rank outcome of a batched (GetMany) chaotic run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BatchOutcome {
    entries_ok: usize,
    batches: u64,
    fallbacks: u64,
    crc_failures: u64,
    rpc_timeouts: u64,
}

/// Two passes of chunked `read_many` under an in-flight corruption plan:
/// pass 1 exercises GetMany RPCs (and their per-entry recovery), pass 2
/// must be pure cache hits.
fn batched_chaotic_run(seed: u64) -> Vec<BatchOutcome> {
    const CHUNK: usize = 6;
    let files = dataset();
    let packed = prepare(files.clone(), &PrepConfig { partitions: 8, ..Default::default() });
    let cfg = ClusterConfig {
        nodes: NODES,
        replication: 2,
        read_through: true,
        fault_plan: Some(FaultPlan::new(seed).corrupt_prob(0.2)),
        failover: Some(FailoverConfig {
            rpc_timeout: Duration::from_millis(500),
            attempts_per_replica: 2,
            backoff_base: Duration::from_micros(200),
            backoff_max: Duration::from_millis(2),
            seed,
            ..Default::default()
        }),
        ..Default::default()
    };
    FanStore::run(cfg, packed.partitions, |fs| {
        let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
        let mut entries_ok = 0usize;
        for pass in 0..2 {
            for (c, chunk) in paths.chunks(CHUNK).enumerate() {
                for (j, result) in fs.read_many(chunk).into_iter().enumerate() {
                    let i = c * CHUNK + j;
                    let data = result.unwrap_or_else(|e| {
                        panic!("pass {pass} file {i}: per-entry failover must repair: {e:?}")
                    });
                    assert_eq!(data, files[i].1, "pass {pass} file {i}: bytes intact");
                    entries_ok += 1;
                }
            }
        }
        let stats = &fs.state().stats;
        let snap = fs.state().metrics.snapshot();
        let counter = |key: &str| snap.counters.get(key).copied().unwrap_or(0);
        BatchOutcome {
            entries_ok,
            batches: counter("client.get_many.batches"),
            fallbacks: counter("client.get_many.fallbacks"),
            crc_failures: stats.crc_failures.get(),
            rpc_timeouts: stats.rpc_timeouts.get(),
        }
    })
}

#[test]
fn get_many_corruption_fails_only_the_hit_entries() {
    let outcomes = batched_chaotic_run(0xBA7C_4ED5);
    let per_rank_entries = 2 * FILES; // two passes over the manifest
    let per_rank_batches = 2 * (FILES as u64).div_ceil(6);
    for (rank, o) in outcomes.iter().enumerate() {
        assert_eq!(o.entries_ok, per_rank_entries, "rank {rank}: every entry delivered");
        assert_eq!(o.batches, per_rank_batches, "rank {rank}: one batch per read_many call");
    }
    // The plan bit: some GetMany replies (or requests) were corrupted in
    // flight and rejected by the per-entry CRC...
    let crc_total: u64 = outcomes.iter().map(|o| o.crc_failures).sum();
    assert!(crc_total > 0, "corruption plan must bite: {outcomes:?}");
    // ...and only the hit entries fell back to the single-GET
    // failover path — the rest of each batch rode through untouched.
    let fallbacks: u64 = outcomes.iter().map(|o| o.fallbacks).sum();
    let entries: u64 = outcomes.iter().map(|o| o.entries_ok as u64).sum();
    assert!(fallbacks > 0, "corrupted entries must take the per-entry fallback: {outcomes:?}");
    assert!(
        fallbacks < entries / 2,
        "a one-byte flip must not fail whole batches: {fallbacks}/{entries}: {outcomes:?}"
    );
}

#[test]
fn batched_chaos_same_seed_same_recoveries() {
    // GetMany keeps the determinism contract of the single-GET path: the
    // fault schedule is a pure function of (seed, link, sequence) and each
    // rank's batch order is fixed, so recovery counters replay exactly.
    let a = batched_chaotic_run(21);
    let b = batched_chaotic_run(21);
    assert_eq!(a, b, "same seed, same per-entry recoveries");
    assert!(a.iter().map(|o| o.crc_failures).sum::<u64>() > 0, "schedule must bite: {a:?}");
}

#[test]
fn same_seed_gives_identical_degraded_counters() {
    // Every fault decision is a pure function of (seed, link, per-link
    // sequence); every rank's request order is seeded. Two runs of the
    // same plan must therefore recover in exactly the same places.
    let a = chaotic_run(7);
    let b = chaotic_run(7);
    assert_eq!(a, b, "same seed, same fault schedule, same recoveries");
    let degraded: u64 = a.iter().map(|o| o.degraded).sum();
    assert!(degraded > 0, "the schedule must contain faults: {a:?}");

    // A different seed shifts the corruption schedule (the kill is
    // seed-independent, so degraded stays non-zero either way).
    let c = chaotic_run(8);
    let degraded_c: u64 = c.iter().map(|o| o.degraded).sum();
    assert!(degraded_c > 0);
}
