//! End-to-end observability: a 4-node run must emit a parseable metrics
//! snapshot with real latency spread, a complete cross-rank GET span,
//! and — under the chaos schedule — the degraded-read counters the
//! recovery machinery promises. The schema test doubles as the CI smoke
//! check for the JSON export.

use std::sync::Arc;
use std::time::Duration;

use fanstore_repro::mpi::FaultPlan;
use fanstore_repro::store::client::FailoverConfig;
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::metrics::{json, MetricsRegistry};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::store::trace::SpanEvent;
use fanstore_repro::train::epoch::{run_epochs, EpochConfig};

const NODES: usize = 4;
const FILES: usize = 24;

/// Bimodal dataset: small files fetch in microseconds, large ones take
/// visibly longer to ship and decompress — so the latency histograms
/// have genuine spread, not one flat bucket.
fn dataset() -> Vec<(String, Vec<u8>)> {
    (0..FILES)
        .map(|i| {
            let reps = if i % 2 == 0 { 20 } else { 8000 };
            (
                format!("train/shard{}/sample{i:03}.bin", i % 4),
                format!("sample {i} payload ").repeat(reps).into_bytes(),
            )
        })
        .collect()
}

/// Run the read-twice workload (cold fetches, then warm cache hits) and
/// return each rank's registry and recorded spans.
fn observed_run() -> Vec<(Arc<MetricsRegistry>, Vec<SpanEvent>)> {
    let packed = prepare(dataset(), &PrepConfig { partitions: NODES, ..Default::default() });
    let cfg = ClusterConfig { nodes: NODES, trace_ring: 8192, ..Default::default() };
    FanStore::run(cfg, packed.partitions, |fs| {
        let files = fs.enumerate("train").expect("enumerate");
        for _pass in 0..2 {
            for path in &files {
                fs.read_whole(path).expect("read");
            }
        }
        // Ring handle, not contents: this rank's daemon may still be
        // serving peers' requests when the closure ends, so spans are
        // read only after `run` returns (daemons joined).
        (Arc::clone(&fs.state().metrics), Arc::clone(fs.trace().expect("trace ring on")))
    })
    .into_iter()
    .map(|(m, t)| (m, t.spans()))
    .collect()
}

#[test]
fn four_node_run_emits_histograms_and_complete_get_span() {
    let per_rank = observed_run();

    // Merge every rank into one cluster view, as `fanstore metrics` does.
    let merged = MetricsRegistry::new();
    for (registry, _) in &per_rank {
        merged.merge(registry);
    }
    let snap = merged.snapshot();

    // The JSON export round-trips through our own parser.
    let parsed = json::parse(&merged.to_json()).expect("snapshot JSON parses");
    assert!(parsed.get("counters").is_some() && parsed.get("histograms").is_some());

    // Per-op histograms exist with real spread: cache hits vs remote
    // fetches of 100 KB-class files must not land in one bucket.
    let get = snap.histograms.get("client.get.latency_us").expect("GET histogram");
    assert_eq!(get.count as usize, NODES * FILES * 2, "every rank reads every file twice");
    assert!(get.p50 < get.p99, "bimodal workload must spread the quantiles: {get:?}");
    assert!(get.p99 <= get.max && get.min <= get.p50, "summary ordered: {get:?}");
    let rpc = snap.histograms.get("fabric.rpc.latency_us").expect("RPC histogram");
    assert!(rpc.count > 0, "remote fetches went over the fabric");

    // The Prometheus surface carries the same series, in full
    // exposition shape: HELP/TYPE headers and cumulative le-buckets.
    let prom = merged.to_prometheus();
    assert!(prom.contains("# TYPE fanstore_client_get_latency_us histogram"), "{prom}");
    assert!(prom.contains("fanstore_client_get_latency_us_bucket{le=\"+Inf\"}"), "{prom}");
    assert!(prom.contains("fanstore_client_get_latency_us_count"), "{prom}");

    // At least one GET must trace client -> fabric -> daemon *across
    // ranks*: the daemon.serve stage lands on the serving rank's
    // recorder, so completeness is only visible after joining all ranks'
    // spans by request id.
    let all_spans: Vec<&SpanEvent> = per_rank.iter().flat_map(|(_, s)| s).collect();
    let complete = all_spans
        .iter()
        .filter(|s| s.stage == "client.get")
        .filter_map(|get_span| {
            let same = |stage: &str| {
                all_spans.iter().find(|s| s.request == get_span.request && s.stage == stage)
            };
            Some((get_span, same("fabric.rpc")?, same("daemon.serve")?))
        })
        .find(|(get_span, rpc_span, serve)| {
            serve.rank != get_span.rank // genuinely remote
                && rpc_span.rank == get_span.rank
                && rpc_span.start_us >= get_span.start_us
                && rpc_span.start_us + rpc_span.dur_us <= get_span.start_us + get_span.dur_us
        });
    assert!(
        complete.is_some(),
        "no GET with client.get + fabric.rpc + cross-rank daemon.serve among {} spans",
        all_spans.len()
    );
}

#[test]
fn tail_exemplar_resolves_to_complete_span_tree() {
    // A p99 outlier must be actionable: the GET latency histogram's
    // tail exemplars carry their request id, and joining every rank's
    // spans on that id must reassemble the whole cross-rank request —
    // root GET, the rpc leg, the remote daemon's serve leg, and the
    // decompress leg — so "what was slow" links straight to "where the
    // time went".
    let per_rank = observed_run();
    let merged = MetricsRegistry::new();
    for (registry, _) in &per_rank {
        merged.merge(registry);
    }
    let snap = merged.snapshot();
    let get = snap.histograms.get("client.get.latency_us").expect("GET histogram");
    let exemplars = snap.exemplars.get("client.get.latency_us").expect("GET exemplars");
    assert!(!exemplars.is_empty());
    assert_eq!(
        exemplars[0].value, get.max,
        "the top exemplar is the recorded maximum, i.e. the worst GET"
    );
    assert!(exemplars[0].value >= get.p50, "exemplars sample the tail, not the body");

    let all_spans: Vec<&SpanEvent> = per_rank.iter().flat_map(|(_, s)| s).collect();
    let complete = exemplars.iter().find(|ex| {
        let of =
            |stage: &str| all_spans.iter().find(|s| s.request == ex.request && s.stage == stage);
        match (of("client.get"), of("fabric.rpc"), of("daemon.serve"), of("client.decompress")) {
            (Some(root), Some(rpc), Some(serve), Some(dec)) => {
                serve.rank != root.rank // genuinely crossed ranks
                    && rpc.rank == root.rank
                    && dec.rank == root.rank
                    && rpc.start_us >= root.start_us
                    && rpc.start_us + rpc.dur_us <= root.start_us + root.dur_us
            }
            _ => false,
        }
    });
    assert!(
        complete.is_some(),
        "no exemplar joined to a complete cross-rank tree; exemplars={exemplars:?}"
    );
}

#[test]
fn chaos_metrics_snapshot_schema() {
    // The chaos schedule from tests/chaos.rs, but the assertion target is
    // the metrics export: the snapshot must parse as JSON and carry the
    // degraded-read keys the dashboards key on. CI runs exactly this test
    // as the schema smoke check.
    let packed = prepare(dataset(), &PrepConfig { partitions: 8, ..Default::default() });
    let cfg = ClusterConfig {
        nodes: NODES,
        replication: 2,
        read_through: true,
        fault_plan: Some(FaultPlan::new(0x0B5E_C4A0).kill(0, 3).corrupt_prob(0.01)),
        failover: Some(FailoverConfig {
            rpc_timeout: Duration::from_millis(500),
            attempts_per_replica: 2,
            backoff_base: Duration::from_micros(200),
            backoff_max: Duration::from_millis(2),
            seed: 0x0B5E_C4A0,
            ..Default::default()
        }),
        ..Default::default()
    };
    let epoch_cfg = EpochConfig {
        root: "train".into(),
        batch_per_node: 4,
        epochs: 2,
        checkpoint_every: 0,
        checkpoint_bytes: 0,
        seed: 3,
        prefetch: None,
    };
    let jsons = FanStore::run(cfg, packed.partitions, |fs| {
        run_epochs(fs, &epoch_cfg).expect("training survives the faults");
        fs.state().metrics.to_json()
    });

    let mut degraded_total = 0;
    for (rank, text) in jsons.iter().enumerate() {
        let v = json::parse(text).unwrap_or_else(|e| panic!("rank {rank} JSON: {e}\n{text}"));
        let counters = v.get("counters").and_then(|c| c.as_obj()).expect("counters object");
        for key in [
            "client.degraded.reads",
            "client.read_through.reads",
            "fabric.rpc.timeouts",
            // QoS counters register unconditionally (NodeStats), so the
            // dashboards can key on them even for clusters with no policy.
            "client.shed.replies",
            "client.throttled.ops",
            "client.retry.exhausted",
            "daemon.shed.requests",
        ] {
            assert!(counters.contains_key(key), "rank {rank} missing {key}: {text}");
        }
        degraded_total += v
            .get("counters")
            .and_then(|c| c.get("client.degraded.reads"))
            .and_then(json::Value::as_u64)
            .unwrap_or(0);
    }
    assert!(degraded_total > 0, "the fault plan must bite: {jsons:?}");
}

#[test]
fn qos_metrics_snapshot_schema() {
    // A QoS-enabled run must export the per-tenant series — admission on
    // the client (admitted/throttled), scheduling on the daemon
    // (served/shed/queue_depth) and the quota snapshot gauges — with the
    // throttle and shed counters actually biting.
    use fanstore_repro::store::qos::{QosPolicy, TenantQuota};
    let packed = prepare(dataset(), &PrepConfig { partitions: NODES, ..Default::default() });
    let mut policy = QosPolicy::new().with_quota(
        7,
        TenantQuota { rate_per_s: 0.0, burst: 2, weight: 1, op_deadline: Some(Duration::ZERO) },
    );
    policy.deadline_from_timeout = false;
    policy.throttle_retries = 0;
    let cfg =
        ClusterConfig { nodes: NODES, read_through: true, qos: Some(policy), ..Default::default() };
    let registries = FanStore::run(cfg, packed.partitions, |fs| {
        let noisy = fs.fork_tenant(7);
        let files = fs.enumerate("train").expect("enumerate");
        for chunk in files.chunks(3) {
            for r in noisy.read_many(chunk) {
                match r {
                    Ok(_) | Err(fanstore_repro::store::FsError::Throttled(_)) => {}
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        Arc::clone(&fs.state().metrics)
    });
    // The daemon-side tenant lane (served/shed/queue_depth) materialises on
    // whichever rank serves that tenant's traffic, so the schema contract
    // holds on the merged cluster view — exactly what `fanstore qos` and
    // the dashboards consume.
    let merged = MetricsRegistry::new();
    for registry in &registries {
        merged.merge(registry);
    }
    let text = merged.to_json();
    let v = json::parse(&text).unwrap_or_else(|e| panic!("merged JSON: {e}\n{text}"));
    let counters = v.get("counters").and_then(|c| c.as_obj()).expect("counters object");
    for key in [
        "qos.tenant.7.admitted",
        "qos.tenant.7.throttled",
        "qos.tenant.7.served",
        "qos.tenant.7.shed",
    ] {
        assert!(counters.contains_key(key), "merged snapshot missing {key}: {text}");
    }
    let gauges = v.get("gauges").and_then(|c| c.as_obj()).expect("gauges object");
    for key in ["qos.tenant.7.quota.burst", "qos.tenant.7.quota.weight"] {
        assert!(gauges.contains_key(key), "merged snapshot missing gauge {key}: {text}");
    }
    let get = |k: &str| counters.get(k).and_then(json::Value::as_u64).unwrap_or(0);
    assert!(get("client.throttled.ops") > 0, "burst-2 bucket must throttle the flood: {text}");
    assert!(get("daemon.shed.requests") > 0, "expired deadline must shed at the daemons: {text}");
}

#[test]
fn disabled_metrics_record_nothing() {
    let packed = prepare(dataset(), &PrepConfig { partitions: NODES, ..Default::default() });
    let cfg = ClusterConfig { nodes: NODES, metrics: false, ..Default::default() };
    let epoch_cfg = EpochConfig {
        root: "train".into(),
        batch_per_node: 4,
        epochs: 1,
        checkpoint_every: 1,
        checkpoint_bytes: 128,
        seed: 5,
        prefetch: None,
    };
    let out = FanStore::run(cfg, packed.partitions, |fs| {
        assert!(!fs.state().metrics.is_enabled());
        let report = run_epochs(fs, &epoch_cfg).expect("clean run");
        (report, fs.state().metrics.snapshot())
    });
    for (report, snap) in out {
        assert!(report.metrics.is_none(), "disabled cluster must not report deltas");
        assert!(snap.counters.values().all(|&v| v == 0), "{snap:?}");
        assert!(snap.histograms.values().all(|h| h.count == 0), "{snap:?}");
        // The run itself still worked.
        assert_eq!(report.files_seen, FILES);
        assert_eq!(report.checkpoints, 1);
    }
}
