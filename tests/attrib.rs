//! Critical-path attribution, end to end: a seeded 4-rank run under
//! QoS and modelled link delay must decompose every request's wall time
//! into named segments plus an explicit residual — exactly (the sweep
//! is arithmetic, not estimation), with ≥ 90% of the wall attributed to
//! named segments, and with a structural signature that is identical
//! across three same-seed runs.

use std::sync::Arc;
use std::time::Duration;

use fanstore_repro::mpi::FaultPlan;
use fanstore_repro::store::attrib::{aggregate, attribute, bottleneck_table, signature, SEGMENTS};
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::store::qos::{QosPolicy, SloObjective, TenantQuota};
use fanstore_repro::store::trace::SpanEvent;

const NODES: usize = 4;
const FILES: usize = 24;
const SEED: u64 = 0xA77B;

fn dataset() -> Vec<(String, Vec<u8>)> {
    (0..FILES)
        .map(|i| {
            let reps = if i % 2 == 0 { 30 } else { 4000 };
            (format!("train/s{}/f{i:03}.bin", i % 4), format!("rec {i} ").repeat(reps).into_bytes())
        })
        .collect()
}

/// One seeded run: every rank reads the dataset through the batched
/// path (so get_many roots appear) and once through single GETs, under
/// a QoS policy with an SLO — exercising admit, queue, rpc, serve and
/// decompress spans. Returns all ranks' spans joined.
fn seeded_run() -> Vec<SpanEvent> {
    let packed = prepare(dataset(), &PrepConfig { partitions: NODES, ..Default::default() });
    let policy = QosPolicy::new()
        .with_quota(2, TenantQuota { rate_per_s: 0.0, burst: 10_000, ..Default::default() })
        .with_slo(2, SloObjective { latency_us: 5_000, target: 0.99 });
    let cfg = ClusterConfig {
        nodes: NODES,
        trace_ring: 8192,
        qos: Some(policy),
        fault_plan: Some(FaultPlan::new(SEED).delay_prob(1.0, Duration::from_micros(200))),
        ..Default::default()
    };
    let per_rank = FanStore::run(cfg, packed.partitions, |fs| {
        let tenant = fs.fork_tenant(2);
        let files = tenant.enumerate("train").expect("enumerate");
        for chunk in files.chunks(6) {
            for r in tenant.read_many(chunk) {
                r.expect("batched read");
            }
        }
        for path in &files {
            tenant.read_whole(path).expect("read");
        }
        // Return the ring handle, not its contents: this rank's daemon
        // may still be serving peers' requests when the closure ends, so
        // the spans are read only after `run` returns (daemons joined).
        Arc::clone(fs.trace().expect("trace ring on"))
    });
    per_rank.into_iter().flat_map(|t| t.spans()).collect()
}

#[test]
fn segments_sum_to_wall_and_cover_90_percent() {
    let spans = seeded_run();
    let attrs = attribute(&spans);
    assert!(attrs.len() >= FILES, "one attribution per traced request: {}", attrs.len());

    for a in &attrs {
        // The decomposition is exact by construction: named segments
        // plus the explicit residual reproduce the measured wall time.
        assert_eq!(
            a.segments.iter().sum::<u64>() + a.residual_us,
            a.wall_us,
            "request {:x} does not decompose exactly: {a:?}",
            a.request
        );
    }

    // Acceptance: named segments explain >= 90% of the wall (residual
    // is counted explicitly, not hidden).
    let agg = aggregate(&attrs);
    assert!(
        agg.coverage() >= 0.90,
        "attribution coverage {:.3} below 0.90 (residual {} of {} us)",
        agg.coverage(),
        agg.residual_us,
        agg.total_wall_us
    );

    // The run genuinely exercised the remote path: some request crossed
    // ranks and the serve + network segments took real time.
    assert!(attrs.iter().any(|a| a.ranks >= 2), "no cross-rank request");
    assert!(attrs.iter().any(|a| a.segment("serve") > 0), "no serve time attributed");
    assert!(attrs.iter().any(|a| a.segment("network") > 0), "no network time attributed");
    assert!(attrs.iter().any(|a| a.segment("decode") > 0), "no decode time attributed");

    // The bottleneck table renders every segment (CLI-facing surface).
    let table = bottleneck_table(&attrs);
    for name in SEGMENTS {
        assert!(table.contains(&format!("| {name} |")), "{table}");
    }
    assert!(table.contains("| residual |"), "{table}");
}

#[test]
fn same_seed_runs_attribute_identically() {
    // Raw timings are wall-clock and differ run to run; the *structure*
    // — which requests exist, their root stages, and which (stage, rank)
    // spans each joins — must be identical for the same seed, three
    // times over.
    let first = signature(&seeded_run());
    for round in 1..3 {
        let again = signature(&seeded_run());
        assert_eq!(first, again, "run {round} diverged structurally");
    }
    assert!(!first.is_empty());
    assert!(first.contains("root=client.get"), "{first}");
}

#[test]
fn slo_counters_and_burn_gauge_exported() {
    // The SLO plane rides the same run: good/bad classification against
    // the tenant's objective plus the burn-rate gauge must land in the
    // registry.
    let packed = prepare(dataset(), &PrepConfig { partitions: NODES, ..Default::default() });
    let policy = QosPolicy::new()
        .with_slo(2, SloObjective { latency_us: 0, target: 0.9 }) // nothing meets 0 us
        .with_slo(3, SloObjective { latency_us: u64::MAX, target: 0.9 }); // everything does
    let cfg = ClusterConfig { nodes: NODES, qos: Some(policy), ..Default::default() };
    let registries = FanStore::run(cfg, packed.partitions, |fs| {
        let files = fs.enumerate("train").expect("enumerate");
        let slow = fs.fork_tenant(2);
        let fast = fs.fork_tenant(3);
        for path in &files {
            slow.read_whole(path).expect("read");
            fast.read_whole(path).expect("read");
        }
        Arc::clone(&fs.state().metrics)
    });
    for m in &registries {
        let snap = m.snapshot();
        let c = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
        let g = |k: &str| snap.gauges.get(k).copied().unwrap_or(0);
        // A 0 µs objective marks (at least almost) every read bad; the
        // clock's 1 µs resolution makes an exact count timing-dependent,
        // so assert the classification total and the dominant outcome.
        let (good, bad) = (c("qos.tenant.2.slo.good"), c("qos.tenant.2.slo.bad"));
        assert_eq!(good + bad, FILES as u64, "every read classified once");
        assert!(bad * 2 > FILES as u64, "0 us objective must mark most reads bad");
        assert!(g("qos.tenant.2.slo.burn_milli") > 0, "burning error budget");
        // The unreachable objective is exact: nothing is ever bad.
        assert_eq!(c("qos.tenant.3.slo.good"), FILES as u64);
        assert_eq!(c("qos.tenant.3.slo.bad"), 0);
        assert_eq!(g("qos.tenant.3.slo.burn_milli"), 0);
        assert_eq!(g("qos.tenant.2.slo.latency_us"), 0);
        assert_eq!(g("qos.tenant.2.slo.target_milli"), 900);
    }
}
