//! Chaos recovery: run a 4-node training pass while the fabric kills a
//! rank mid-epoch and corrupts payloads, and watch the client recover
//! via replica failover and read-through — the §V-E fault story live.
//!
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```

use std::time::Duration;

use fanstore_repro::mpi::FaultPlan;
use fanstore_repro::store::client::FailoverConfig;
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::train::epoch::{run_epochs, EpochConfig};

fn main() {
    let files: Vec<(String, Vec<u8>)> = (0..24)
        .map(|i| {
            (
                format!("train/shard{}/sample{i:03}.bin", i % 4),
                format!("sample {i} payload ").repeat(60).into_bytes(),
            )
        })
        .collect();
    let total_bytes: u64 = files.iter().map(|(_, d)| d.len() as u64).sum();
    let packed = prepare(files, &PrepConfig { partitions: 8, ..Default::default() });

    let epoch_cfg = EpochConfig {
        root: "train".into(),
        batch_per_node: 4,
        epochs: 2,
        checkpoint_every: 0,
        checkpoint_bytes: 0,
        seed: 42,
        prefetch: None,
    };

    // The fault schedule: rank 0's service links go dark after 3
    // messages each, and ~1% of surviving payloads are corrupted.
    let plan = FaultPlan::new(0xC4A0).kill(0, 3).corrupt_prob(0.01);
    let cfg = ClusterConfig {
        nodes: 4,
        replication: 2,
        read_through: true,
        fault_plan: Some(plan),
        failover: Some(FailoverConfig {
            rpc_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_micros(200),
            backoff_max: Duration::from_millis(2),
            seed: 42,
            ..Default::default()
        }),
        ..Default::default()
    };

    println!("chaotic run: 4 nodes, rank 0 dies mid-epoch, 1% corruption");
    let reports = FanStore::run(cfg, packed.partitions.clone(), |fs| {
        let report = run_epochs(fs, &epoch_cfg).expect("training survives");
        let s = &fs.state().stats;
        (report, s.rpc_timeouts.get(), s.crc_failures.get(), s.read_through_reads.get())
    });
    for (rank, (r, timeouts, crc, read_through)) in reports.iter().enumerate() {
        println!(
            "  rank {rank}: bytes {:>6} ({}), degraded {:>2}, \
             timeouts {timeouts}, crc failures {crc}, read-through {read_through}",
            r.bytes_read,
            if r.bytes_read == total_bytes * 2 { "exact" } else { "WRONG" },
            r.degraded,
        );
    }

    // Same plan without recovery: the deadline turns the dead rank into
    // a prompt, clean error instead of a hang.
    println!("same faults, failover but no read-through: bounded failure");
    let cfg = ClusterConfig {
        nodes: 4,
        replication: 1, // no replicas: rank 0's files are unreachable
        read_through: false,
        fault_plan: Some(FaultPlan::new(0xC4A0).kill(0, 0)),
        failover: Some(FailoverConfig {
            rpc_timeout: Duration::from_millis(100),
            ..Default::default()
        }),
        ..Default::default()
    };
    let outcomes = FanStore::run(cfg, packed.partitions, |fs| {
        run_epochs(fs, &epoch_cfg).map(|r| r.bytes_read).map_err(|e| e.to_string())
    });
    for (rank, out) in outcomes.iter().enumerate() {
        match out {
            Ok(bytes) => println!("  rank {rank}: completed, {bytes} bytes"),
            Err(e) => println!("  rank {rank}: failed fast: {e}"),
        }
    }
}
