//! Quickstart: pack a small dataset, run a 4-node FanStore cluster, and
//! exercise the POSIX-style interface from every node.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fanstore_repro::compress::{CodecFamily, CodecId};
use fanstore_repro::store::client::Whence;
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};

fn main() {
    // 1. A toy dataset: 24 files in a small directory tree.
    let files: Vec<(String, Vec<u8>)> = (0..24)
        .map(|i| {
            let body = format!("sample {i}: the quick brown fox jumps over the lazy dog. ")
                .repeat(200)
                .into_bytes();
            (format!("train/class{:02}/img{i:04}.bin", i % 4), body)
        })
        .collect();
    let total: usize = files.iter().map(|(_, d)| d.len()).sum();

    // 2. Data preparation (paper §V-B): compress + concatenate into one
    //    partition per node.
    let packed = prepare(
        files,
        &PrepConfig {
            partitions: 4,
            codec: CodecId::new(CodecFamily::Lz4Hc, 9),
            store_if_incompressible: true,
            ..Default::default()
        },
    );
    println!(
        "packed {} bytes into {} partitions ({} bytes, ratio {:.2})",
        total,
        packed.partitions.len(),
        packed.packed_bytes,
        packed.ratio()
    );

    // 3. Run a 4-node cluster. Every node sees the same global namespace;
    //    files whose partition lives elsewhere are fetched compressed over
    //    the (simulated) interconnect and decompressed locally.
    let reports =
        FanStore::run(ClusterConfig { nodes: 4, ..Default::default() }, packed.partitions, |fs| {
            // Enumerate like a training framework at startup.
            let all = fs.enumerate("train").expect("enumerate");
            assert_eq!(all.len(), 24);

            // POSIX-style access: open / lseek / read / close.
            let fd = fs.open(&all[fs.rank() % all.len()]).expect("open");
            fs.lseek(fd, 8, Whence::Set).expect("seek");
            let mut buf = [0u8; 16];
            let n = fs.read(fd, &mut buf).expect("read");
            fs.close(fd).expect("close");

            // Each node writes a checkpoint (write-once model).
            let ckpt = format!("ckpt/rank{}/model_epoch_0001.h5", fs.rank());
            fs.write_whole(&ckpt, &vec![0u8; 1024]).expect("checkpoint");

            let stats = fs.state();
            (n, stats.stats.local_opens.get(), stats.stats.remote_opens.get())
        });

    for (rank, (n, local, remote)) in reports.iter().enumerate() {
        println!("rank {rank}: read {n} bytes after seek; opens local={local} remote={remote}");
    }
    println!("quickstart OK");
}
