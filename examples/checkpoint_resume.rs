//! Fault tolerance (paper §V-E): train, "crash", resume from the newest
//! checkpoint, and export checkpoints for the next allocation.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```

use fanstore_repro::datagen::{DatasetKind, DatasetSpec};
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::train::epoch::{run_epoch_range, EpochConfig};
use fanstore_repro::train::resume::{
    export_checkpoints, latest_checkpoint_epoch, run_epochs_resuming,
};

fn main() {
    let spec = DatasetSpec::scaled(DatasetKind::LungNii, 12, 0xC3);
    let packed = prepare(spec.generate_all(), &PrepConfig { partitions: 2, ..Default::default() });
    println!(
        "lung CT dataset packed at ratio {:.2} ({} -> {} bytes)",
        packed.ratio(),
        packed.input_bytes,
        packed.packed_bytes
    );

    let cfg = EpochConfig {
        root: "lung".into(),
        batch_per_node: 3,
        epochs: 6,
        checkpoint_every: 2,
        checkpoint_bytes: 32 * 1024,
        seed: 77,
        prefetch: None,
    };

    let exported =
        FanStore::run(ClusterConfig { nodes: 2, ..Default::default() }, packed.partitions, |fs| {
            // First allocation: run 3 of 6 epochs, then simulate a failure.
            run_epoch_range(fs, &cfg, 0, 3).expect("first allocation");
            println!(
                "rank {}: 'crash' after epoch 3; newest checkpoint = epoch {:?}",
                fs.rank(),
                latest_checkpoint_epoch(fs).expect("checkpoint store must be consultable")
            );

            // Second allocation (the paper resumes from the shared FS; here
            // the store session persists): pick up where the checkpoints say.
            let (report, resumed_from) = run_epochs_resuming(fs, &cfg).expect("resume");
            println!(
                "rank {}: resumed from epoch {resumed_from}, ran {} more iterations, \
                 wrote {} more checkpoints",
                fs.rank(),
                report.iterations,
                report.checkpoints
            );

            // Export for the next allocation's shared-FS staging.
            export_checkpoints(fs).expect("export")
        });

    for (rank, ckpts) in exported.iter().enumerate() {
        println!(
            "rank {rank}: exported {} checkpoints ({} bytes total)",
            ckpts.len(),
            ckpts.iter().map(|(_, d)| d.len()).sum::<usize>()
        );
    }
    println!("checkpoint_resume OK");
}
