//! The paper's SRGAN scenario end-to-end: synthetic EM (TIFF) data,
//! compressor selection under the synchronous-I/O constraint (Eq. 1),
//! packing with the selected codec, and real training-style epochs on a
//! FanStore cluster.
//!
//! ```sh
//! cargo run --release --example srgan_em
//! ```

use fanstore_repro::compress::registry::parse_name;
use fanstore_repro::datagen::{DatasetKind, DatasetSpec};
use fanstore_repro::select::{select, Candidate, IoProfile};
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::train::apps::AppSpec;
use fanstore_repro::train::epoch::{run_epochs, EpochConfig};

fn measure(name: &str, samples: &[Vec<u8>]) -> Candidate {
    let codec = fanstore_repro::compress::registry::create(parse_name(name).unwrap()).unwrap();
    let compressed: Vec<Vec<u8>> = samples
        .iter()
        .map(|s| fanstore_repro::compress::compress_to_vec(codec.as_ref(), s))
        .collect();
    let t0 = std::time::Instant::now();
    for (c, s) in compressed.iter().zip(samples) {
        let out = fanstore_repro::compress::decompress_to_vec(codec.as_ref(), c, s.len()).unwrap();
        std::hint::black_box(&out);
    }
    let input: usize = samples.iter().map(Vec::len).sum();
    let output: usize = compressed.iter().map(Vec::len).sum();
    Candidate {
        name: name.to_string(),
        decomp_s_per_file: t0.elapsed().as_secs_f64() / samples.len() as f64,
        ratio: input as f64 / output as f64,
    }
}

fn main() {
    let app = AppSpec::srgan_gtx();

    // 1. Sample the dataset and evaluate candidate compressors, as the
    //    data-preparation workflow prescribes (§VI-B).
    let spec = DatasetSpec::scaled(DatasetKind::EmTif, 16, 0x5EA);
    let samples: Vec<Vec<u8>> = (0..4).map(|i| spec.generate(i)).collect();
    let candidates: Vec<Candidate> = ["lzsse8-2", "lz4hc-9", "brotli-9", "lzma-6"]
        .iter()
        .map(|n| measure(n, &samples))
        .collect();

    // 2. Selection under the sync-I/O constraint, with the GTX read curve.
    let io = IoProfile {
        tpt_read: 9_469.0,
        bdw_read: 4_969.0,
        tpt_read_raw: 3_158.0,
        bdw_read_raw: 6_663.0,
    };
    let selection = select(&app.profile(), &io, &candidates);
    println!("compressor selection for {} (sync I/O):", app.name);
    for e in &selection.evaluations {
        println!(
            "  {:<10} ratio {:>5.2}  decomp {:>8.0} us/file  fetch {:>7.1} ms vs budget {:>7.1} ms  -> {}",
            e.candidate.name,
            e.candidate.ratio,
            e.candidate.decomp_s_per_file * 1e6,
            e.fetch_time * 1e3,
            e.budget * 1e3,
            if e.feasible { "FEASIBLE" } else { "rejected" }
        );
    }
    let choice = selection
        .max_ratio()
        .map(|e| e.candidate.name.clone())
        .unwrap_or_else(|| "lzsse8-2".to_string());
    println!("selected: {choice}\n");

    // 3. Pack the dataset with the selected codec and train for 2 epochs
    //    on a 4-node cluster.
    let files = spec.generate_all();
    let packed = prepare(
        files,
        &PrepConfig {
            partitions: 4,
            codec: parse_name(&choice).unwrap(),
            store_if_incompressible: true,
            ..Default::default()
        },
    );
    println!(
        "packed EM dataset: {} -> {} bytes (storage ratio {:.2})",
        packed.input_bytes,
        packed.packed_bytes,
        packed.ratio()
    );

    let cfg = EpochConfig {
        root: "em".into(),
        batch_per_node: 4,
        epochs: 2,
        checkpoint_every: 1,
        checkpoint_bytes: 64 * 1024,
        seed: 42,
        prefetch: None,
    };
    let reports =
        FanStore::run(ClusterConfig { nodes: 4, ..Default::default() }, packed.partitions, |fs| {
            run_epochs(fs, &cfg).expect("epochs")
        });
    for (rank, r) in reports.iter().enumerate() {
        println!(
            "rank {rank}: {} files, {} iterations, {:.1} MB read, {} checkpoints",
            r.files_seen,
            r.iterations,
            r.bytes_read as f64 / 1e6,
            r.checkpoints
        );
    }
    println!("srgan_em OK");
}
