//! The paper's FRNN scenario: hundreds of tiny tokamak-diagnostic files,
//! asynchronous I/O, and the concatenation benefit — packing tiny files
//! into partitions reclaims the file-system block padding, so the
//! *storage* ratio beats the per-file compression ratio (§VII-E2).
//!
//! ```sh
//! cargo run --release --example frnn_tokamak
//! ```

use fanstore_repro::compress::registry::parse_name;
use fanstore_repro::datagen::{DatasetKind, DatasetSpec};
use fanstore_repro::store::cluster::{ClusterConfig, FanStore};
use fanstore_repro::store::prep::{prepare, PrepConfig};
use fanstore_repro::train::apps::AppSpec;
use fanstore_repro::train::epoch::{run_epochs, EpochConfig};

/// File-system block size tiny files get rounded up to.
const FS_BLOCK: usize = 4096;

fn main() {
    let app = AppSpec::frnn_cpu();
    println!(
        "{}: async I/O, {} files/iteration, T_iter {} ms",
        app.name,
        app.c_batch,
        app.t_iter * 1e3
    );

    // 1. Generate 512 tiny (~1.2 KB) reactor-status files.
    let spec = DatasetSpec::scaled(DatasetKind::TokamakNpz, 512, 0xF_12A);
    let files = spec.generate_all();
    let raw_bytes: usize = files.iter().map(|(_, d)| d.len()).sum();
    let block_padded: usize =
        files.iter().map(|(_, d)| d.len().div_ceil(FS_BLOCK) * FS_BLOCK).sum();

    // 2. Pack with lz4hc. The paper's observation: each small file wastes
    //    most of a 4 KB block on a normal file system; concatenation into
    //    partitions recovers that on top of the compression itself.
    let packed = prepare(
        files,
        &PrepConfig {
            partitions: 4,
            codec: parse_name("lz4hc-9").unwrap(),
            store_if_incompressible: true,
            ..Default::default()
        },
    );
    println!(
        "raw bytes: {raw_bytes}  |  on a 4 KB-block FS: {block_padded}  |  packed: {}",
        packed.packed_bytes
    );
    println!(
        "per-file compression ratio ~{:.2}; effective storage ratio vs block-padded: {:.2} \
         (paper: 6.5 for the dataset vs 2.6 for individual files)",
        packed.ratio(),
        block_padded as f64 / packed.packed_bytes as f64
    );

    // 3. Train 3 epochs on 4 nodes; with async I/O the tiny reads hide
    //    entirely under compute.
    let cfg = EpochConfig {
        root: "tokamak".into(),
        batch_per_node: app.c_batch as usize / 4,
        epochs: 3,
        checkpoint_every: 0,
        checkpoint_bytes: 0,
        seed: 11,
        prefetch: None,
    };
    let reports =
        FanStore::run(ClusterConfig { nodes: 4, ..Default::default() }, packed.partitions, |fs| {
            run_epochs(fs, &cfg).expect("epochs")
        });
    for (rank, r) in reports.iter().enumerate() {
        println!(
            "rank {rank}: {} files seen, {} iterations, {:.2} MB delivered",
            r.files_seen,
            r.iterations,
            r.bytes_read as f64 / 1e6
        );
    }
    println!("frnn_tokamak OK");
}
