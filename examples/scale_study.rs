//! Weak-scaling study (the Figure 9 sweeps): FanStore vs a shared file
//! system from 1 to 512 nodes, using the io-sim models calibrated to the
//! paper's measurements.
//!
//! ```sh
//! cargo run --release --example scale_study
//! ```

use fanstore_repro::iosim::cluster::Cluster;
use fanstore_repro::iosim::mds::MetadataModel;
use fanstore_repro::iosim::storage::presets;
use fanstore_repro::train::apps::AppSpec;
use fanstore_repro::train::scaling::{weak_scaling, ScaleStorage};

fn main() {
    let app = AppSpec::resnet50_cpu();
    let cluster = Cluster::cpu();
    let nodes = [1usize, 4, 16, 64, 128, 256, 512];

    let read = presets::fanstore_cpu();
    let fan = ScaleStorage::FanStore { read: &read, ratio: 1.0, decomp_s_per_file: 0.0 };
    let shared = ScaleStorage::SharedFs {
        aggregate_bandwidth: 50e9,
        per_file_time: 1.0 / 1515.0,
        aggregate_file_ops: 6_000.0,
        mds: MetadataModel::lustre(),
    };

    println!("ResNet-50 on the CPU cluster (weak scaling, modelled):");
    println!(
        "{:>6} {:>10} {:>14} {:>8} {:>14} | {:>14} {:>8} {:>14}",
        "nodes", "sockets", "FanStore img/s", "eff", "startup", "Lustre img/s", "eff", "startup"
    );
    let fan_pts = weak_scaling(&app, &cluster, &fan, &nodes, 1_300_000, 2_002);
    let sh_pts = weak_scaling(&app, &cluster, &shared, &nodes, 1_300_000, 2_002);
    for (f, s) in fan_pts.iter().zip(&sh_pts) {
        println!(
            "{:>6} {:>10} {:>14.0} {:>7.1}% {:>13.1}s | {:>14.0} {:>7.1}% {:>13.0}s",
            f.nodes,
            f.processors,
            f.items_per_sec,
            f.efficiency * 100.0,
            f.startup,
            s.items_per_sec,
            s.efficiency * 100.0,
            s.startup,
        );
    }
    let last = sh_pts.last().unwrap();
    println!(
        "\nAt 512 nodes the shared file system needs {:.0} minutes of metadata \
         enumeration before the first iteration — the paper's run never started \
         within an hour.",
        last.startup / 60.0
    );
    println!(
        "FanStore weak-scaling efficiency at 512 nodes: {:.1}% (paper: 92.2%).",
        fan_pts.last().unwrap().efficiency * 100.0
    );
}
