//! # fanstore-repro
//!
//! Umbrella crate for the FanStore reproduction workspace. It re-exports
//! every member crate so the examples and integration tests in this
//! repository can use one coherent namespace:
//!
//! * [`compress`] — the lossless codec suite (the paper's lzbench sweep).
//! * [`datagen`] — synthetic datasets matching the paper's six datasets.
//! * [`mpi`] — thread-per-rank MPI-like communicator.
//! * [`iosim`] — storage/interconnect performance models and cluster presets.
//! * [`store`] — FanStore itself: pack format, prep tool, daemon, cache,
//!   POSIX-style client.
//! * [`select`] — the compressor selection algorithm (paper §VI, Eq. 1–3).
//! * [`train`] — the distributed DL-training I/O simulator.

pub use fanstore as store;
pub use fanstore_compress as compress;
pub use fanstore_datagen as datagen;
pub use fanstore_select as select;
pub use fanstore_train as train;
pub use io_sim as iosim;
pub use mpi_sim as mpi;
